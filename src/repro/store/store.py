"""``HistogramStore`` — the embedded, crash-safe epoch store facade.

Directory layout::

    <store>/
      MANIFEST.json        format marker, tier widths, live segment list
      wal.log              append-only WAL (torn tail truncated on open)
      seg-00000001.seg     immutable mmap-read segments (footer-indexed)
      ...

Write path: every appended epoch snapshot is framed (meta JSON +
:mod:`~repro.store.codec` collector record) into the WAL; once
``wal_seal_records`` accumulate, :meth:`checkpoint` seals them into a
new segment and truncates the WAL.  The crash discipline is strictly
ordered — segment durable, then manifest durable, then WAL truncated —
and every record carries a monotone global sequence number, so a crash
between any two steps recovers without loss *or* duplication (WAL
records whose ``seq`` already appears in a segment are discarded on
open).  Stray ``*.tmp`` / unreferenced segment files from a crashed
rewrite are swept on open.

Read path: :meth:`records` iterates segment footers plus the unsealed
WAL tail; :meth:`query` runs the transitive-closure range engine
(:mod:`repro.store.query`) over them.  :meth:`compact` executes a
:mod:`~repro.store.compactor` plan as a full atomic rewrite.

Opening anything that is not a store — a missing directory, an empty
one, a directory holding foreign files — raises :class:`ValueError`
naming the path; the store never plants files outside a directory it
created (mirroring ``read_binary_columns``'s magic/manifest checks).

Concurrency: recovery is destructive (it truncates a torn WAL tail and
sweeps unreferenced segment files), so a *writable* handle takes an
exclusive advisory lock on the store's ``LOCK`` file for its lifetime;
a second writable open — another process, or another handle in this
one — fails with :class:`ValueError` instead of corrupting the live
writer's WAL.  ``open(path, readonly=True)`` is the reader's mode:
it takes no lock, never truncates, never sweeps, rejects every
mutation, and may be pointed at a store a live daemon is writing
(``repro store query``/``inspect`` use it).
"""

from __future__ import annotations

import json
import os
import struct
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.collector import VscsiStatsCollector
from ..core.service import HistogramService
from .codec import (
    collector_from_bytes,
    collector_to_bytes,
    merge_collector_payloads,
)
from .compactor import DEFAULT_TIERS_NS, plan_compaction, select_retained
from .query import QueryIndex, QueryResult
from .segments import SegmentReader, write_segment
from .wal import WAL_MAGIC, WriteAheadLog, _fsync_dir, scan_wal

try:
    import fcntl
except ImportError:  # pragma: no cover - non-posix platforms
    fcntl = None

__all__ = ["LOCK_NAME", "MANIFEST_NAME", "HistogramStore", "StoreRecord"]

MANIFEST_NAME = "MANIFEST.json"
LOCK_NAME = "LOCK"
_MANIFEST_FORMAT = "repro-histstore-v1"
_SEGMENT_GLOB = "seg-*.seg"
_WAL_NAME = "wal.log"
_METALEN = struct.Struct("<I")


def _acquire_store_lock(path: Path):
    """Take the writer lock for the store at ``path``.

    Returns the open ``LOCK`` file object whose flock guards the
    store (held until :meth:`HistogramStore.close`), or ``None`` where
    ``fcntl`` is unavailable.  Raises :class:`ValueError` when another
    writable handle — in this process or any other — already holds it.
    """
    if fcntl is None:  # pragma: no cover - non-posix platforms
        return None
    fileobj = open(path / LOCK_NAME, "a+")
    try:
        fcntl.flock(fileobj.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        owner = ""
        try:
            fileobj.seek(0)
            owner = fileobj.read(64).strip()
        except OSError:  # pragma: no cover
            pass
        fileobj.close()
        raise ValueError(
            f"histogram store {path} is locked by another writer"
            + (f" (pid {owner})" if owner else "")
            + "; use open(path, readonly=True) for queries"
        ) from None
    try:
        fileobj.seek(0)
        fileobj.truncate()
        fileobj.write(f"{os.getpid()}\n")
        fileobj.flush()
    except OSError:  # pragma: no cover - lock still held, pid is advisory
        pass
    return fileobj


def _release_store_lock(fileobj) -> None:
    if fileobj is None:
        return
    try:
        fcntl.flock(fileobj.fileno(), fcntl.LOCK_UN)
    except OSError:  # pragma: no cover
        pass
    fileobj.close()


def _atomic_write_json(path: Path, document: Dict) -> None:
    """Durable atomic JSON replace (tmp + fsync + rename + dir fsync)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fileobj:
        json.dump(document, fileobj, indent=2, sort_keys=True)
        fileobj.write("\n")
        fileobj.flush()
        os.fsync(fileobj.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class StoreRecord:
    """Handle to one stored record (segment entry or WAL tail entry)."""

    __slots__ = ("seq", "vm", "vdisk", "start_ns", "end_ns", "tier",
                 "records", "_reader", "_entry", "_payload")

    def __init__(self, seq, vm, vdisk, start_ns, end_ns, tier, records,
                 reader=None, entry=None, payload=None):
        self.seq = seq
        self.vm = vm
        self.vdisk = vdisk
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.tier = tier
        #: Raw source epochs aggregated in this record (1 for tier 0).
        self.records = records
        self._reader = reader
        self._entry = entry
        self._payload = payload

    def raw(self):
        """The framed codec payload, undecoded.

        A CRC-checked zero-copy view into the segment mmap for sealed
        records, the in-memory record bytes for WAL-tail records.  The
        view is only valid while the owning store stays open — copy
        (``bytes(...)``) to outlive it.
        """
        if self._payload is not None:
            return self._payload
        return self._reader.payload(self._entry)

    def load(self) -> VscsiStatsCollector:
        """Decode the record into a collector snapshot."""
        return collector_from_bytes(self.raw())

    def meta(self) -> Dict:
        return {"seq": self.seq, "vm": self.vm, "vdisk": self.vdisk,
                "start_ns": self.start_ns, "end_ns": self.end_ns,
                "tier": self.tier, "records": self.records}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StoreRecord seq={self.seq} {self.vm}/{self.vdisk} "
                f"[{self.start_ns},{self.end_ns}) tier={self.tier}>")


def _wal_frame(meta: Dict, record: bytes) -> bytes:
    """General WAL payload framing: JSON meta + codec record.

    The append hot path writes the equivalent *binary* meta instead
    (see :data:`_META_BIN`); this JSON form remains both the fallback
    for metadata the binary layout cannot hold (names over 255 UTF-8
    bytes) and the legacy layout every recovery keeps reading.
    """
    meta_bytes = json.dumps(meta, sort_keys=True,
                            separators=(",", ":")).encode("utf-8")
    return _METALEN.pack(len(meta_bytes)) + meta_bytes + record


#: Binary append meta: marker (0x01 — never ``{``, so JSON metas stay
#: distinguishable), u8 vm/vdisk UTF-8 lengths, pad, u32 tier, u32
#: source-record count, then i64 seq/start_ns/end_ns, followed by the
#: vm and vdisk name bytes.  ~40 bytes against ~110 for the JSON form —
#: per-epoch framing overhead is real money at fleet ingest rates, and
#: the fixed layout also recovers faster than ``json.loads``.
_META_BIN = struct.Struct("<BBBxIIqqq")
_META_MARKER = 0x01

#: Field order of the in-memory meta tuples held in ``_wal_records``
#: (and the keys of the dict form that segment footers persist).
_META_KEYS = ("seq", "vm", "vdisk", "start_ns", "end_ns", "tier",
              "records")


def _wal_unframe(payload: bytes) -> Tuple[Dict, bytes]:
    if len(payload) < _METALEN.size:
        raise ValueError("corrupt WAL payload: no meta header")
    (meta_len,) = _METALEN.unpack_from(payload, 0)
    body = _METALEN.size + meta_len
    if body > len(payload):
        raise ValueError("corrupt WAL payload: meta past the end")
    if meta_len and payload[_METALEN.size] == _META_MARKER:
        if meta_len < _META_BIN.size:
            raise ValueError("corrupt WAL payload: short binary meta")
        (_marker, vm_len, vdisk_len, tier, records, seq, start_ns,
         end_ns) = _META_BIN.unpack_from(payload, _METALEN.size)
        names = _METALEN.size + _META_BIN.size
        if names + vm_len + vdisk_len != body:
            raise ValueError("corrupt WAL payload: meta names truncated")
        meta = {"seq": seq, "vm": payload[names:names + vm_len].decode("utf-8"),
                "vdisk": payload[names + vm_len:body].decode("utf-8"),
                "start_ns": start_ns, "end_ns": end_ns, "tier": tier,
                "records": records}
    else:
        meta = json.loads(payload[_METALEN.size:body].decode("utf-8"))
    return meta, payload[body:]


class HistogramStore:
    """Durable time-series store of histogram epoch snapshots."""

    def __init__(self, *_args, **_kwargs):
        raise TypeError(
            "use HistogramStore.create(path), HistogramStore.open(path) "
            "or HistogramStore.open_or_create(path)"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def _build(cls, path: Path, manifest: Dict, fsync: str,
               fsync_batch: int, wal_seal_records: int,
               readonly: bool = False) -> "HistogramStore":
        if wal_seal_records < 1:
            raise ValueError(
                f"wal_seal_records must be >= 1, got {wal_seal_records}"
            )
        store = object.__new__(cls)
        store.path = path
        store._manifest = manifest
        store._wal_seal_records = wal_seal_records
        store.readonly = readonly
        store._lock_file = None
        store._readers: List[SegmentReader] = []
        # Unsealed WAL-tail records as ``(meta tuple, payload)`` — the
        # meta stays a plain tuple (``_META_KEYS`` order) on the append
        # hot path and becomes a dict only when a checkpoint hands it
        # to :func:`write_segment`.
        store._wal_records: List[Tuple[Tuple, bytes]] = []
        store._wal: Optional[WriteAheadLog] = None
        store._wal_ro_size = len(WAL_MAGIC)
        store._index = None
        #: ``(vm, vdisk) -> (vm_len, vdisk_len, name bytes)`` cache for
        #: the binary append meta — the same disks repeat every epoch.
        store._name_bytes: Dict[Tuple[str, str], Tuple[int, int, bytes]] = {}
        store._closed = False
        store.appended_total = 0
        store.checkpoints_total = 0
        store.compactions_total = 0
        store.recovered_wal_records = 0
        store.truncated_wal_bytes = 0

        try:
            if not readonly:
                # Recovery below is destructive (WAL truncation, stray
                # sweep): refuse to run it under a live writer.
                store._lock_file = _acquire_store_lock(path)

                # Sweep strays from a crashed segment write / compaction.
                live = set(manifest["segments"])
                for stray in path.glob("*.tmp"):
                    stray.unlink()
                for candidate in path.glob(_SEGMENT_GLOB):
                    if candidate.name not in live:
                        candidate.unlink()

            for name in manifest["segments"]:
                store._readers.append(SegmentReader(path / name))
            max_seq = 0
            for reader in store._readers:
                for entry in reader.entries:
                    if entry.seq > max_seq:
                        max_seq = entry.seq

            if readonly:
                # Scan-only recovery: expose the intact WAL prefix
                # without truncating a live writer's (or anyone's) log.
                wal_path = path / _WAL_NAME
                payloads: List[bytes] = []
                if wal_path.exists() and wal_path.stat().st_size > 0:
                    payloads, store._wal_ro_size, _torn = scan_wal(wal_path)
            else:
                store._wal = WriteAheadLog(path / _WAL_NAME, fsync=fsync,
                                           fsync_batch=fsync_batch)
                store.truncated_wal_bytes = store._wal.truncated_bytes
                payloads = store._wal.recovered
            sealed_max_seq = max_seq
            for payload in payloads:
                meta, record = _wal_unframe(payload)
                seq = meta["seq"]
                if seq <= sealed_max_seq:
                    # Crash landed between sealing a segment and
                    # resetting the WAL: the record is already durable
                    # in a segment.
                    continue
                entry = ((seq, meta["vm"], meta["vdisk"], meta["start_ns"],
                          meta["end_ns"], meta["tier"], meta["records"]),
                         bytes(record))
                if seq <= max_seq:
                    # Duplicate WAL seq: a group-commit append failed
                    # *after* buffering its frame (the batch sync
                    # raised), so the store never advanced the sequence
                    # and the retry reused it.  Only the later frame
                    # was ever acknowledged — last write wins.
                    if store._wal_records \
                            and store._wal_records[-1][0][0] == seq:
                        store._wal_records[-1] = entry
                    continue
                store._wal_records.append(entry)
                max_seq = seq
            store.recovered_wal_records = len(store._wal_records)
            store._next_seq = max_seq + 1
        except BaseException:
            for reader in store._readers:
                reader.close()
            if store._wal is not None:
                store._wal.close()
            _release_store_lock(store._lock_file)
            raise
        return store

    @classmethod
    def create(cls, path, tiers_ns: Sequence[int] = DEFAULT_TIERS_NS,
               fsync: str = "batch", fsync_batch: int = 64,
               wal_seal_records: int = 512) -> "HistogramStore":
        """Initialize a new store in ``path`` (missing or empty dir)."""
        path = Path(path)
        if path.exists():
            if not path.is_dir():
                raise ValueError(
                    f"cannot create histogram store at {path}: "
                    f"not a directory"
                )
            if (path / MANIFEST_NAME).exists():
                raise ValueError(
                    f"cannot create histogram store at {path}: "
                    f"already a histogram store (use open)"
                )
            if any(path.iterdir()):
                raise ValueError(
                    f"cannot create histogram store at {path}: "
                    f"directory is not empty and holds no store manifest"
                )
        else:
            path.mkdir(parents=True)
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": 1,
            "created_unix": time.time(),
            "tiers_ns": [int(w) for w in tiers_ns],
            "next_segment": 1,
            "segments": [],
        }
        _atomic_write_json(path / MANIFEST_NAME, manifest)
        return cls._build(path, manifest, fsync, fsync_batch,
                          wal_seal_records)

    @staticmethod
    def _read_manifest(path: Path) -> Dict:
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValueError(
                f"not a histogram store: {path} has no {MANIFEST_NAME}"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"not a histogram store: {path} has an unreadable "
                f"{MANIFEST_NAME} ({exc})"
            ) from None
        if not isinstance(manifest, dict) \
                or manifest.get("format") != _MANIFEST_FORMAT:
            raise ValueError(
                f"not a histogram store: {path} manifest format is "
                f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}, "
                f"expected {_MANIFEST_FORMAT!r}"
            )
        return manifest

    @classmethod
    def open(cls, path, fsync: str = "batch", fsync_batch: int = 64,
             wal_seal_records: int = 512,
             readonly: bool = False) -> "HistogramStore":
        """Open an existing store; never creates or modifies a foreign
        directory — a missing, empty or unrecognized ``path`` raises
        :class:`ValueError` naming it.

        ``readonly=True`` opens without the writer lock and without
        recovery side effects (no WAL truncation, no stray sweep), so
        it is safe against a store a live daemon is writing; every
        mutating method then raises :class:`ValueError`.
        """
        path = Path(path)
        if not path.is_dir():
            raise ValueError(f"not a histogram store: {path} "
                             f"is not a directory")
        if not readonly:
            return cls._build(path, cls._read_manifest(path), fsync,
                              fsync_batch, wal_seal_records)
        # A live writer may checkpoint/compact between our manifest
        # read and the segment opens; re-read and retry on a vanished
        # segment (an opened mmap survives a later unlink, so only the
        # open itself can race).
        last_exc: Optional[BaseException] = None
        for _attempt in range(5):
            manifest = cls._read_manifest(path)
            try:
                return cls._build(path, manifest, fsync, fsync_batch,
                                  wal_seal_records, readonly=True)
            except FileNotFoundError as exc:
                last_exc = exc
        raise ValueError(
            f"cannot open histogram store {path} read-only: the "
            f"segment set keeps changing underneath ({last_exc})"
        )

    @classmethod
    def open_or_create(cls, path, **kwargs) -> "HistogramStore":
        """Open ``path`` as a store, creating it when missing/empty."""
        path = Path(path)
        if path.is_dir() and (path / MANIFEST_NAME).exists():
            return cls.open(path, **kwargs)
        return cls.create(path, **kwargs)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def tiers_ns(self) -> Tuple[int, ...]:
        return tuple(self._manifest["tiers_ns"])

    def append(self, vm: str, vdisk: str, start_ns: int, end_ns: int,
               collector: VscsiStatsCollector, sync: bool = False) -> int:
        """Persist one epoch snapshot; returns its sequence number.

        ``[start_ns, end_ns)`` is the epoch's half-open span in integer
        nanoseconds.  With ``sync=True`` the record is fsynced before
        returning regardless of the store's batching policy — the
        zero-acknowledged-loss durability point.
        """
        if self._closed or self.readonly:
            self._check_writable()
        if type(start_ns) is not int:
            start_ns = int(start_ns)
        if type(end_ns) is not int:
            end_ns = int(end_ns)
        if end_ns <= start_ns:
            raise ValueError(
                f"epoch span must be non-empty: [{start_ns}, {end_ns})"
            )
        if start_ns < 0:
            raise ValueError(f"negative epoch start {start_ns}")
        vm = str(vm)
        vdisk = str(vdisk)
        seq = self._next_seq
        record = collector_to_bytes(collector)
        names = self._name_bytes.get((vm, vdisk))
        if names is None:
            vm_bytes = vm.encode("utf-8")
            vdisk_bytes = vdisk.encode("utf-8")
            if len(vm_bytes) > 255 or len(vdisk_bytes) > 255:
                names = ()  # binary meta can't hold it; JSON always can
            else:
                names = (len(vm_bytes), len(vdisk_bytes),
                         vm_bytes + vdisk_bytes)
            self._name_bytes[(vm, vdisk)] = names
        if names:
            meta_bytes = _META_BIN.pack(
                _META_MARKER, names[0], names[1], 0, 1,
                seq, start_ns, end_ns) + names[2]
            self._wal.append(b"".join((_METALEN.pack(len(meta_bytes)),
                                       meta_bytes, record)))
        else:
            self._wal.append(_wal_frame(
                {"seq": seq, "vm": vm, "vdisk": vdisk,
                 "start_ns": start_ns, "end_ns": end_ns, "tier": 0,
                 "records": 1}, record))
        if sync:
            self._wal.sync()
        self._next_seq += 1
        self.appended_total += 1
        self._wal_records.append(
            ((seq, vm, vdisk, start_ns, end_ns, 0, 1), record))
        self._index = None  # record set changed: drop the query index
        if len(self._wal_records) >= self._wal_seal_records:
            self.checkpoint()
        return seq

    def append_epoch(self, service: HistogramService, start_ns: int,
                     end_ns: int, sync: bool = False) -> int:
        """Persist every disk of a sealed epoch service; returns the
        number of records appended."""
        count = 0
        for (vm, vdisk), collector in service.collectors():
            self.append(vm, vdisk, start_ns, end_ns, collector)
            count += 1
        if sync and count:
            self.sync()
        return count

    def sync(self) -> None:
        """Force the WAL durability point forward to now."""
        self._check_writable()
        self._wal.sync()

    def checkpoint(self) -> Optional[str]:
        """Seal the WAL tail into a new immutable segment.

        Returns the new segment's file name, or ``None`` when the WAL
        is empty.  Ordering — segment durable, manifest durable, WAL
        truncated — makes every crash window recoverable.
        """
        self._check_writable()
        if not self._wal_records:
            return None
        name = f"seg-{self._manifest['next_segment']:08d}.seg"
        write_segment(self.path / name,
                      ((dict(zip(_META_KEYS, meta)), record)
                       for meta, record in self._wal_records))
        self._manifest["next_segment"] += 1
        self._manifest["segments"].append(name)
        _atomic_write_json(self.path / MANIFEST_NAME, self._manifest)
        self._wal.reset()
        self._wal_records = []
        self._readers.append(SegmentReader(self.path / name))
        self._index = None  # handles now point at the sealed segment
        self.checkpoints_total += 1
        return name

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def records(self) -> Iterator[StoreRecord]:
        """Every live record: sealed segments first, then the WAL tail."""
        self._check_open()
        for reader in self._readers:
            for entry in reader.entries:
                yield StoreRecord(
                    entry.seq, entry.vm, entry.vdisk, entry.start_ns,
                    entry.end_ns, entry.tier, entry.records,
                    reader=reader, entry=entry,
                )
        for (seq, vm, vdisk, start_ns, end_ns, tier, records), record \
                in self._wal_records:
            yield StoreRecord(
                seq, vm, vdisk, start_ns, end_ns, tier, records,
                payload=record,
            )

    def tail(self, after_seq: int = -1) -> List[StoreRecord]:
        """Records with ``seq > after_seq``, in sequence order.

        The incremental read a watch loop performs between polls: keep
        the highest seq seen, re-open the store (a readonly open
        snapshots the segment set), and ``tail`` past the watermark.
        Sequence numbers are assigned monotonically at append time, so
        for a live tier-0 store this is exactly "the epochs sealed
        since last time".  Compaction folds old records into *new*
        (higher-seq, ``tier > 0``) granules — a tailer that must see
        raw epochs only should skip ``record.tier != 0``.
        """
        self._check_open()
        return sorted((h for h in self.records() if h.seq > after_seq),
                      key=lambda h: h.seq)

    def __len__(self) -> int:
        """Live record count (post-compaction granules)."""
        return (sum(len(r.entries) for r in self._readers)
                + len(self._wal_records))

    @property
    def epochs(self) -> int:
        """Raw source epochs represented across all live records."""
        return sum(h.records for h in self.records())

    def disks(self) -> List[Tuple[str, str]]:
        """Sorted distinct ``(vm, vdisk)`` keys present in the store."""
        return sorted({(h.vm, h.vdisk) for h in self.records()})

    def query(self, start_ns: int, end_ns: int,
              vm: Optional[str] = None,
              vdisk: Optional[str] = None) -> QueryResult:
        """Range query ``[start_ns, end_ns]`` (see
        :func:`repro.store.query.range_query` for the exactness
        contract).

        Queries run through a cached :class:`QueryIndex` built over the
        current record set and invalidated by every mutation
        (append/checkpoint/compact/retire), so the repeated/overlapping
        windows of a watch loop skip re-scanning and re-closing."""
        self._check_open()
        if self._index is None:
            self._index = QueryIndex(self.records())
        return self._index.query(start_ns, end_ns, vm=vm, vdisk=vdisk)

    # ------------------------------------------------------------------
    # Compaction / retention
    # ------------------------------------------------------------------
    def compact(self, retain_before_ns: Optional[int] = None,
                tiers_ns: Optional[Sequence[int]] = None) -> Dict:
        """Fold records into coarser tiers (and optionally drop aged
        ones), rewriting the segment set atomically.

        Returns a summary dict.  The rewrite is all-or-nothing: the new
        segment lands durably, then the manifest flips to it, then old
        segment files are unlinked — a crash at any point leaves either
        the old store or the new one, never a blend.
        """
        self._check_writable()
        self.checkpoint()
        handles = sorted(self.records(),
                         key=lambda h: (h.start_ns, h.end_ns, h.vm,
                                        h.vdisk, h.seq))
        kept, dropped = select_retained(handles, retain_before_ns)
        plan = plan_compaction(
            kept, self.tiers_ns if tiers_ns is None else tiers_ns
        )
        summary = {
            "records_before": len(handles),
            "records_dropped": len(dropped),
            "merges": plan.merges,
            "records_after": len(plan.passthrough) + plan.merges,
        }
        if not plan.merged and not dropped and len(self._readers) <= 1:
            summary["rewritten"] = False
            return summary

        new_records: List[Tuple[Dict, bytes]] = []
        for h in plan.passthrough:
            # Verbatim frame copy — no decode/re-encode, and v1 frames
            # stay v1 in place.  The copy matters: the raw view points
            # into a segment mmap this rewrite is about to unlink.
            new_records.append((h.meta(), bytes(h.raw())))
        for group in plan.merged:
            members = sorted(group.members,
                             key=lambda h: (h.start_ns, h.end_ns, h.seq))
            merged = merge_collector_payloads([m.raw() for m in members])
            meta = {"seq": self._next_seq, "vm": group.vm,
                    "vdisk": group.vdisk, "start_ns": group.start_ns,
                    "end_ns": group.end_ns, "tier": group.tier,
                    "records": sum(m.records for m in members)}
            self._next_seq += 1
            new_records.append((meta, collector_to_bytes(merged)))
        new_records.sort(key=lambda pair: (pair[0]["start_ns"],
                                           pair[0]["end_ns"],
                                           pair[0]["vm"], pair[0]["vdisk"],
                                           pair[0]["seq"]))

        old_names = list(self._manifest["segments"])
        if new_records:
            name = f"seg-{self._manifest['next_segment']:08d}.seg"
            write_segment(self.path / name, new_records)
            self._manifest["next_segment"] += 1
            self._manifest["segments"] = [name]
        else:
            self._manifest["segments"] = []
        _atomic_write_json(self.path / MANIFEST_NAME, self._manifest)
        for reader in self._readers:
            reader.close()
        self._readers = []
        for old in old_names:
            (self.path / old).unlink()
        if new_records:
            self._readers.append(SegmentReader(self.path / name))
        self._index = None  # every segment handle was just replaced
        self.compactions_total += 1
        summary["rewritten"] = True
        return summary

    def retire_segments(self, before_ns: int) -> List[str]:
        """Unlink whole segments whose every record ended at or before
        ``before_ns`` — age-based retention without a rewrite.  Returns
        the deleted segment file names."""
        self._check_writable()
        doomed, survivors, kept_readers = [], [], []
        for reader in self._readers:
            if reader.entries and all(e.end_ns <= before_ns
                                      for e in reader.entries):
                doomed.append(reader)
            else:
                survivors.append(reader.path.name)
                kept_readers.append(reader)
        if not doomed:
            return []
        self._manifest["segments"] = survivors
        _atomic_write_json(self.path / MANIFEST_NAME, self._manifest)
        names = []
        for reader in doomed:
            names.append(reader.path.name)
            reader.close()
            reader.path.unlink()
        self._readers = kept_readers
        self._index = None  # retired handles must not serve queries
        return names

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def inspect(self) -> Dict:
        """Operational summary: segments, spans, tiers, WAL state."""
        self._check_open()
        segments = []
        for reader in self._readers:
            entries = reader.entries
            segments.append({
                "file": reader.path.name,
                "bytes": reader.path.stat().st_size,
                "records": len(entries),
                "epochs": sum(e.records for e in entries),
                "tiers": sorted({e.tier for e in entries}),
                "start_ns": min((e.start_ns for e in entries),
                                default=None),
                "end_ns": max((e.end_ns for e in entries), default=None),
            })
        all_handles = list(self.records())
        return {
            "path": str(self.path),
            "format": _MANIFEST_FORMAT,
            "readonly": self.readonly,
            "tiers_ns": list(self.tiers_ns),
            "segments": segments,
            "wal": {
                "records": len(self._wal_records),
                "bytes": (self._wal.size if self._wal is not None
                          else self._wal_ro_size),
                "recovered_records": self.recovered_wal_records,
                "truncated_bytes": self.truncated_wal_bytes,
            },
            "records": len(all_handles),
            "epochs": sum(h.records for h in all_handles),
            "start_ns": min((h.start_ns for h in all_handles),
                            default=None),
            "end_ns": max((h.end_ns for h in all_handles), default=None),
            "disks": [f"{vm}/{vdisk}" for vm, vdisk in self.disks()],
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"histogram store {self.path} is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if self.readonly:
            raise ValueError(
                f"histogram store {self.path} is open read-only"
            )

    def close(self) -> None:
        """Flush the WAL, release every mapping and the writer lock."""
        if self._closed:
            return
        if self._wal is not None:
            self._wal.close()
        for reader in self._readers:
            reader.close()
        self._index = None
        _release_store_lock(self._lock_file)
        self._lock_file = None
        self._closed = True

    def __enter__(self) -> "HistogramStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"<HistogramStore {state} {self.path} "
                f"segments={len(self._readers)} "
                f"wal={len(self._wal_records)}>")
