"""repro.store — durable histogram time-series store.

An embedded store for histogram epoch snapshots: a CRC-framed
write-ahead log (torn-tail crash recovery), immutable mmap-read
segments with footer indexes, tiered compaction that is byte-identical
to merging the raw epochs, and an exact range-query engine.  See
``docs/store.md``.
"""

from .codec import (collector_from_bytes, collector_to_bytes,
                    service_from_bytes, service_to_bytes)
from .compactor import (DEFAULT_TIERS_NS, CompactionPlan, MergeGroup,
                        plan_compaction, select_retained)
from .query import QueryResult, range_query
from .segments import SegmentEntry, SegmentReader, write_segment
from .store import MANIFEST_NAME, HistogramStore, StoreRecord
from .wal import WAL_MAGIC, WriteAheadLog, scan_wal

__all__ = [
    "collector_from_bytes", "collector_to_bytes",
    "service_from_bytes", "service_to_bytes",
    "DEFAULT_TIERS_NS", "CompactionPlan", "MergeGroup",
    "plan_compaction", "select_retained",
    "QueryResult", "range_query",
    "SegmentEntry", "SegmentReader", "write_segment",
    "MANIFEST_NAME", "HistogramStore", "StoreRecord",
    "WAL_MAGIC", "WriteAheadLog", "scan_wal",
]
