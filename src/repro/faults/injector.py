"""Deterministic, seedable fault injection for the live/store/parallel
stack.

The paper's §5 overhead study argues always-on collection is safe in
production; production also means socket resets, ``ENOSPC`` mid-seal
and workers killed by the OOM killer.  This module is the test plane
that makes those failures *reproducible*: a :class:`FaultPlan` maps
``(site, invocation index)`` to a :class:`FaultAction`, a
:class:`FaultInjector` counts invocations per site and fires the
matching action, and :func:`inject` arms the plan process-wide (and —
via the :data:`ENV_VAR` environment variable — in any worker
subprocess started while the plan is armed, fork or spawn alike).

Hook sites are a single call::

    from ..faults import fire
    ...
    fire("store.wal.append")

When no plan is armed (the production state), :func:`fire` is one
module-global read and a ``None`` comparison — the hooks are compiled
in but free.  When a plan is armed, the injector counts the call and
either returns ``None`` (no fault scheduled there), raises the built
exception (``error``/``reset``), sleeps (``delay``), terminates the
process (``crash`` — only where the caller declared itself
``crashable``, i.e. inside a worker subprocess, never in the test
runner), or returns the action itself (``partial`` — the site
truncates its own write, since only it knows its buffer).

Determinism is the point: the same plan against the same call sequence
fires the same faults, so a chaos test that fails replays exactly.
Schedules come from explicit rules or from :meth:`FaultPlan.scattered`,
which draws a pseudo-random schedule from a seed.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ENV_VAR",
    "SITES",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "activate_from_env",
    "active",
    "fire",
    "inject",
]

#: Environment variable carrying the armed plan (JSON) into worker
#: subprocesses.  ``spawn`` workers re-import the world and call
#: :func:`activate_from_env`; ``fork`` workers inherit the live
#: injector directly.
ENV_VAR = "REPRO_FAULT_PLAN"

#: The injection sites compiled into the stack, for reference (plans
#: may name any site string; unknown sites simply never fire).
SITES = {
    "live.client.send": "LiveStatsClient._roundtrip, before each frame write",
    "live.client.recv": "LiveStatsClient._roundtrip, before each response read",
    "live.server.recv": "LiveStatsServer connection loop, before each frame read",
    "live.server.send": "LiveStatsServer._send, before each response write",
    # The WAL sites are batch-aware: under group commit, append fires
    # once per *logical* append even though frames buffer and reach the
    # file as one write, so an N-append schedule covers the same slots
    # whatever the fsync policy.  A ``partial`` append drains the
    # buffered (already-acknowledgeable) frames first, then tears only
    # its own frame; sync fires before the drain+fsync pair, modelling
    # a durability barrier that fails as a whole.
    "store.wal.append": "WriteAheadLog.append, before framing the record",
    "store.wal.sync": "WriteAheadLog.sync, before drain+flush+fsync",
    "store.segment.write": "write_segment, before staging the temp file",
    "parallel.worker": "_replay_shard, before each segment replay",
    # Fires inside cluster worker processes: once right after the
    # startup HELLO and once per coordinator-driven worker-rotate, with
    # ``worker_index`` in the context for per-worker ``when`` routing
    # and ``point`` = "start" | "rotate".  A crash here exercises the
    # coordinator's dead-worker path: the fan-in pipe EOFs, the hash
    # ring is rebuilt over the survivors and publishers are redirected.
    "live.cluster.worker": "cluster _worker_main, after HELLO and per rotate",
    # Fires in the fleet uplink's sender thread, once per snapshot send
    # attempt (retries fire again), with ``node``, ``host``, ``epoch``
    # and ``point`` = "send" in the context for ``when`` routing.  A
    # reset/error here exercises the reconnect + ack-cache replay path;
    # enough consecutive failures trigger the bounded-backoff failover
    # to the next parent with a full (watermark-deduplicated) replay.
    "fleet.uplink": "FleetUplink sender, before each snapshot send",
    # Fires inside the FTL each time garbage collection triggers on a
    # channel, with ``name`` (array name), ``channel`` and
    # ``free_blocks`` in the context for ``when`` routing.  A
    # ``partial`` here doubles the reclaim target for that run — a GC
    # storm that migrates far more valid pages than steady state,
    # stretching the ``gc_pause_us`` tail; ``error``/``crash``
    # propagate out of the write path like a drive-level fault.
    "ssd.gc": "Ftl._collect, at each GC trigger on a channel",
    # Fires once per (disk, epoch) inside OnlineAnalyzer._observe_disk,
    # with ``vm``, ``vdisk`` and ``epoch`` in the context for ``when``
    # routing.  A ``partial`` forces that reading's drift score to the
    # maximum 1.0 — a deterministic misclassification window aimed at
    # the hysteresis logic; ``error``/``reset`` propagate out of the
    # analysis stage (the live seal hook degrades instead of crashing).
    "analysis.drift": "OnlineAnalyzer._observe_disk, per disk per epoch",
}

_KINDS = ("error", "reset", "delay", "partial", "crash")


class FaultAction:
    """One scheduled fault.

    ``kind`` is one of:

    * ``"error"`` — raise ``OSError(errno, message)`` (default
      ``EIO``; use ``ENOSPC`` for disk-full).
    * ``"reset"`` — raise :class:`ConnectionResetError`.
    * ``"delay"`` — sleep ``seconds`` and continue.
    * ``"partial"`` — returned to the site, which writes only
      ``fraction`` of its buffer and then fails as the transport
      would (short write).
    * ``"crash"`` — ``os._exit(exit_code)``, but only when the firing
      context passes ``crashable=True`` (worker subprocesses); in any
      other process the crash is recorded and skipped, so a chaos test
      can never take its own runner down.

    ``when`` (optional dict) restricts the action to firing contexts
    whose keyword arguments are a superset of it — e.g.
    ``when={"worker_index": 0}`` kills only shard worker 0.
    """

    __slots__ = ("kind", "errno", "message", "seconds", "fraction",
                 "exit_code", "when")

    def __init__(self, kind: str, errno: Optional[int] = None,
                 message: Optional[str] = None, seconds: float = 0.01,
                 fraction: float = 0.5, exit_code: int = 70,
                 when: Optional[Dict] = None):
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.kind = kind
        self.errno = errno
        self.message = message
        self.seconds = seconds
        self.fraction = fraction
        self.exit_code = exit_code
        self.when = dict(when) if when else None

    def matches(self, ctx: Dict) -> bool:
        """Whether this action applies in the firing context."""
        if self.when is None:
            return True
        return all(ctx.get(key) == value for key, value in self.when.items())

    def build_exception(self) -> BaseException:
        """The exception an ``error``/``reset`` action raises."""
        if self.kind == "reset":
            return ConnectionResetError(
                self.message or "injected connection reset")
        code = self.errno if self.errno is not None else _errno.EIO
        return OSError(code, self.message
                       or f"{os.strerror(code)} (injected)")

    def to_dict(self) -> Dict:
        out: Dict = {"kind": self.kind}
        for field in ("errno", "message", "when"):
            value = getattr(self, field)
            if value is not None:
                out[field] = value
        if self.kind == "delay":
            out["seconds"] = self.seconds
        if self.kind == "partial":
            out["fraction"] = self.fraction
        if self.kind == "crash":
            out["exit_code"] = self.exit_code
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultAction":
        return cls(**data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultAction {self.to_dict()}>"


class FaultPlan:
    """A deterministic schedule: ``(site, invocation index) -> action``.

    Indices count a site's invocations from zero, process-wide.  The
    fluent adders return ``self`` so schedules chain::

        plan = (FaultPlan()
                .reset("live.client.send", at=2)
                .error("store.wal.append", at=0, errno=errno.ENOSPC)
                .crash("parallel.worker", at=1, when={"worker_index": 0}))
    """

    def __init__(self, name: str = "plan"):
        self.name = name
        self._rules: Dict[str, Dict[int, FaultAction]] = {}

    # -- fluent construction -------------------------------------------
    def add(self, site: str, at: int, action: FaultAction) -> "FaultPlan":
        if at < 0:
            raise ValueError(f"invocation index must be >= 0, got {at}")
        self._rules.setdefault(site, {})[at] = action
        return self

    def error(self, site: str, at: int, errno: Optional[int] = None,
              message: Optional[str] = None,
              when: Optional[Dict] = None) -> "FaultPlan":
        return self.add(site, at, FaultAction("error", errno=errno,
                                              message=message, when=when))

    def reset(self, site: str, at: int,
              when: Optional[Dict] = None) -> "FaultPlan":
        return self.add(site, at, FaultAction("reset", when=when))

    def delay(self, site: str, at: int, seconds: float = 0.01,
              when: Optional[Dict] = None) -> "FaultPlan":
        return self.add(site, at, FaultAction("delay", seconds=seconds,
                                              when=when))

    def partial(self, site: str, at: int, fraction: float = 0.5,
                when: Optional[Dict] = None) -> "FaultPlan":
        return self.add(site, at, FaultAction("partial", fraction=fraction,
                                              when=when))

    def crash(self, site: str, at: int, exit_code: int = 70,
              when: Optional[Dict] = None) -> "FaultPlan":
        return self.add(site, at, FaultAction("crash", exit_code=exit_code,
                                              when=when))

    # -- queries -------------------------------------------------------
    def lookup(self, site: str, index: int) -> Optional[FaultAction]:
        return self._rules.get(site, {}).get(index)

    def sites(self) -> List[str]:
        return sorted(self._rules)

    def rules(self) -> Iterator[Tuple[str, int, FaultAction]]:
        for site in sorted(self._rules):
            for index in sorted(self._rules[site]):
                yield site, index, self._rules[site][index]

    def __len__(self) -> int:
        return sum(len(slots) for slots in self._rules.values())

    # -- seeded schedules ----------------------------------------------
    @classmethod
    def scattered(cls, seed: int, sites: Sequence[str],
                  kinds: Sequence[str] = ("reset", "partial"),
                  faults: int = 3, horizon: int = 8) -> "FaultPlan":
        """Draw a pseudo-random schedule from ``seed``.

        Picks up to ``faults`` distinct ``(site, index)`` slots with
        indices below ``horizon`` and assigns each a kind from
        ``kinds``.  The same seed always yields the same plan, so a
        failing chaos seed is a complete reproduction recipe.
        """
        rng = random.Random(seed)
        plan = cls(name=f"scattered-{seed}")
        for _ in range(faults):
            site = rng.choice(list(sites))
            index = rng.randrange(horizon)
            if plan.lookup(site, index) is not None:
                continue
            kind = rng.choice(list(kinds))
            if kind == "partial":
                plan.partial(site, index,
                             fraction=rng.choice((0.25, 0.5, 0.75)))
            elif kind == "reset":
                plan.reset(site, index)
            elif kind == "delay":
                plan.delay(site, index, seconds=0.001)
            elif kind == "error":
                plan.error(site, index)
            else:
                raise ValueError(f"unknown kind {kind!r}")
        return plan

    # -- serialization (for ENV_VAR propagation) -----------------------
    def to_json(self) -> str:
        return json.dumps({
            "name": self.name,
            "rules": [
                {"site": site, "at": index, "action": action.to_dict()}
                for site, index, action in self.rules()
            ],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        plan = cls(name=data.get("name", "plan"))
        for rule in data["rules"]:
            plan.add(rule["site"], rule["at"],
                     FaultAction.from_dict(rule["action"]))
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan {self.name!r} rules={len(self)}>"


class FaultInjector:
    """Counts per-site invocations and fires the plan's actions.

    Thread-safe: connection handlers, shard workers and the control
    plane all fire through one injector, and each site's invocation
    order is made deterministic by the callers' own serialization
    (e.g. one WAL has one writer; a sequential client emits sends in
    order).  ``fired`` logs every fault that actually fired as
    ``(site, index, kind)`` so tests can assert the schedule engaged.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.fired: List[Tuple[str, int, str]] = []
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def count(self, site: str) -> int:
        """How many times ``site`` has fired (invocations, not faults)."""
        with self._lock:
            return self._counts.get(site, 0)

    def fire(self, site: str, **ctx) -> Optional[FaultAction]:
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            action = self.plan.lookup(site, index)
            if action is None or not action.matches(ctx):
                return None
            self.fired.append((site, index, action.kind))
        if action.kind == "delay":
            time.sleep(action.seconds)
            return None
        if action.kind == "crash":
            if ctx.get("crashable"):
                os._exit(action.exit_code)
            return None  # never take down a non-worker process
        if action.kind == "partial":
            return action
        raise action.build_exception()


#: The process-wide armed injector (``None`` — the production state —
#: makes :func:`fire` a no-op).
_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The currently armed injector, if any."""
    return _ACTIVE


def fire(site: str, **ctx) -> Optional[FaultAction]:
    """Hook entry point: no-op unless a plan is armed.

    Hot paths call this bare (``fire("store.wal.append")``) so the
    disabled cost is one global read; sites with routing context
    (worker index, crashability) pass it as keywords for ``when``
    matching.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.fire(site, **ctx)


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the block.

    Exports the plan through :data:`ENV_VAR` so worker subprocesses
    started inside the block (fork *or* spawn) see the same schedule,
    and restores the previous injector/environment on exit.
    """
    global _ACTIVE
    injector = FaultInjector(plan)
    previous = _ACTIVE
    previous_env = os.environ.get(ENV_VAR)
    _ACTIVE = injector
    os.environ[ENV_VAR] = plan.to_json()
    try:
        yield injector
    finally:
        _ACTIVE = previous
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env


def activate_from_env() -> Optional[FaultInjector]:
    """Arm the plan exported in :data:`ENV_VAR`, if any.

    Called by worker subprocess entry points.  A forked worker already
    inherited the parent's injector and keeps it (its counters include
    the parent's pre-fork history, which is what a fork *is*); a spawn
    worker starts fresh from the serialized plan.
    """
    global _ACTIVE
    if _ACTIVE is None:
        spec = os.environ.get(ENV_VAR)
        if spec:
            _ACTIVE = FaultInjector(FaultPlan.from_json(spec))
    return _ACTIVE
