"""Deterministic fault injection (see :mod:`repro.faults.injector`).

The chaos plane behind ``tests/test_faults.py``: seedable schedules of
socket resets, partial writes, ``EIO``/``ENOSPC`` store errors, worker
crashes and delays, fired through hooks compiled into the live client
and server, the store WAL/segment writers and the sharded replay
workers.  With no plan armed the hooks cost one global read.
"""

from .injector import (
    ENV_VAR,
    SITES,
    FaultAction,
    FaultInjector,
    FaultPlan,
    activate_from_env,
    active,
    fire,
    inject,
)

__all__ = [
    "ENV_VAR",
    "SITES",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "activate_from_env",
    "active",
    "fire",
    "inject",
]
