"""Seeded, named random streams.

Every stochastic component (each workload thread, the storage model,
interarrival jitter) draws from its **own** named stream derived from a
single experiment seed.  This guarantees that adding a component or
reordering draws in one component never perturbs another — the property
that makes the figure reproductions stable run-to-run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomSource"]


class RandomSource:
    """Factory of independent named :class:`random.Random` streams.

    >>> src = RandomSource(seed=42)
    >>> a = src.stream("disk")
    >>> b = src.stream("workload.oltp.0")
    >>> a is src.stream("disk")          # streams are cached by name
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomSource":
        """Derive a child source (for subsystems that make many streams)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomSource seed={self.seed} streams={len(self._streams)}>"
