"""Discrete-event simulation engine.

The engine is the time substrate underneath everything in this
reproduction: the hypervisor, the storage array, the guest operating
systems and the workload generators all schedule work on a single
shared :class:`Engine`.

Design notes
------------
* Simulated time is an **integer count of nanoseconds**.  The paper's
  instrumentation records the processor cycle counter and converts to
  microseconds when inserting into histograms; integer nanoseconds give
  us the same sub-microsecond resolution while keeping event ordering
  exactly deterministic (no floating-point ties).
* Events are ``(time, sequence, callback)`` entries on a binary heap.
  The monotonically increasing sequence number makes simultaneous
  events fire in scheduling order, which is the property the rest of
  the system relies on for reproducibility.
* Cancellation is *lazy*: a cancelled event stays on the heap but is
  skipped when popped.  This keeps :meth:`Engine.schedule` and
  :meth:`EventHandle.cancel` O(log n) / O(1).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "Engine",
    "EventHandle",
    "SimulationError",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_SEC",
    "us",
    "ms",
    "seconds",
]

#: Nanoseconds per microsecond.
NS_PER_US = 1_000
#: Nanoseconds per millisecond.
NS_PER_MS = 1_000_000
#: Nanoseconds per second.
NS_PER_SEC = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer simulated nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Convert milliseconds to integer simulated nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Convert seconds to integer simulated nanoseconds."""
    return int(round(value * NS_PER_SEC))


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Instances are returned by :meth:`Engine.schedule`.  ``cancel()`` is
    idempotent and safe to call after the event has fired (it then has
    no effect).
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired", "_engine")

    def __init__(self, time: int, seq: int, callback: Callable[[], None],
                 engine: Optional["Engine"] = None):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled and not self.fired and self._engine is not None:
            self._engine._live -= 1
        self.cancelled = True
        self.callback = None  # free the closure promptly

    # Heap ordering -----------------------------------------------------
    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time}ns seq={self.seq} {state}>"


class Engine:
    """A deterministic discrete-event simulation loop.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(us(5), lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired == [5000]
    True
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: List[EventHandle] = []
        self._live: int = 0  # pending (not cancelled, not fired) events
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds (float, for reporting)."""
        return self._now / NS_PER_US

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds (float, for reporting)."""
        return self._now / NS_PER_SEC

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` nanoseconds from now.

        ``delay`` must be a non-negative integer.  Returns an
        :class:`EventHandle` that may be used to cancel the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time`` (ns)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        handle = EventHandle(int(time), self._seq, callback, self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_at_batch(
        self, items: Sequence[Tuple[int, Callable[[], None]]]
    ) -> List[EventHandle]:
        """Schedule many ``(absolute_time_ns, callback)`` events at once.

        Events fire in the usual (time, scheduling-order) order, exactly
        as an equivalent :meth:`schedule_at` loop would, but for a large
        batch the heap is rebuilt with one O(n) ``heapify`` instead of n
        O(log n) sift-ups.
        """
        now = self._now
        seq = self._seq
        handles = []
        for time, callback in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time} before now={now}"
                )
            handles.append(EventHandle(int(time), seq, callback, self))
            seq += 1
        self._seq = seq
        self._live += len(handles)
        heap = self._heap
        if len(handles) * 4 > len(heap) + 8:
            heap.extend(handles)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for handle in handles:
                push(heap, handle)
        return handles

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (time does not advance in that case).
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.fired = True
            self._live -= 1
            callback = handle.callback
            handle.callback = None
            assert callback is not None
            callback()
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run events until the queue drains or ``until`` (absolute ns).

        If ``until`` is given, all events with ``time <= until`` fire and
        the clock is then advanced to exactly ``until`` (mirroring how a
        real measurement interval ends at a wall-clock boundary).
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                if until is not None and heap[0].time > until:
                    break
                handle = pop(heap)
                if handle.cancelled:
                    continue
                now = self._now = handle.time
                handle.fired = True
                self._live -= 1
                callback = handle.callback
                handle.callback = None
                assert callback is not None
                callback()
                # Drain the rest of the same-timestamp run inline: every
                # queued event with time == now is already <= until, so
                # the boundary check and the step() dispatch overhead are
                # skipped for all but the first event of the run.  Fire
                # order is still strictly (time, seq).
                while heap and heap[0].time == now and not self._stopped:
                    handle = pop(heap)
                    if handle.cancelled:
                        continue
                    handle.fired = True
                    self._live -= 1
                    callback = handle.callback
                    handle.callback = None
                    callback()
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: int) -> None:
        """Run for ``duration`` simulated nanoseconds from the current time."""
        self.run(until=self._now + int(duration))

    def stop(self) -> None:
        """Stop a ``run()`` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1): a
        live counter is maintained by schedule/cancel/fire instead of
        scanning the heap (cancelled events linger there lazily)."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self._now}ns pending={len(self._heap)}>"
