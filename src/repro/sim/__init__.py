"""Discrete-event simulation substrate.

The paper's measurements run on a real ESX host; this package is the
time-and-causality substrate for our simulated reproduction of that
host: a deterministic event loop (:class:`Engine`), generator-coroutine
processes (:class:`Process`) for workload threads, and reproducible
named random streams (:class:`RandomSource`).
"""

from .engine import (
    Engine,
    EventHandle,
    SimulationError,
    NS_PER_MS,
    NS_PER_SEC,
    NS_PER_US,
    ms,
    seconds,
    us,
)
from .process import Barrier, Process, Signal, Timeout, all_of
from .randomness import RandomSource

__all__ = [
    "Engine",
    "EventHandle",
    "SimulationError",
    "NS_PER_MS",
    "NS_PER_SEC",
    "NS_PER_US",
    "ms",
    "seconds",
    "us",
    "Barrier",
    "Process",
    "Signal",
    "Timeout",
    "all_of",
    "RandomSource",
]
