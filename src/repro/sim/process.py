"""Generator-coroutine processes on top of the event engine.

Workload generators (Filebench threads, DBT-2 connections, copy loops)
are most naturally written as sequential code with waits:

.. code-block:: python

    def worker(proc):
        while True:
            yield proc.timeout(us(100))      # think time
            done = proc.signal()
            issue_io(on_complete=done.fire)
            yield done                        # wait for completion

A :class:`Process` wraps such a generator and steps it whenever the
yielded waitable completes.  Two waitables are provided:

* :class:`Timeout` — fires after a fixed simulated delay.
* :class:`Signal` — fires when some other component calls
  :meth:`Signal.fire` (used for I/O completions and barriers).

This is intentionally a small subset of a full process algebra: it is
exactly what the workload models in this reproduction need and nothing
more.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .engine import Engine, SimulationError

__all__ = ["Process", "Timeout", "Signal", "Barrier", "all_of"]


class _Waitable:
    """Base class for things a process generator can ``yield``."""

    def _arm(self, engine: Engine, resume: Callable[[Any], None]) -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Wait for a fixed number of simulated nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = int(delay)

    def _arm(self, engine: Engine, resume: Callable[[Any], None]) -> None:
        engine.schedule(self.delay, lambda: resume(None))


class Signal(_Waitable):
    """A one-shot event another component fires.

    A ``Signal`` may be fired before or after a process waits on it;
    both orders work (the value is latched).  Firing twice raises.
    """

    __slots__ = ("_engine", "_fired", "_value", "_waiters")

    def __init__(self, engine: Engine):
        self._engine = engine
        self._fired = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def fire(self, value: Any = None) -> None:
        """Mark the signal complete and wake every waiter (same tick)."""
        if self._fired:
            raise SimulationError("Signal fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            # Resume on a fresh event so the firer's stack unwinds first.
            self._engine.schedule(0, lambda r=resume: r(self._value))

    def _arm(self, engine: Engine, resume: Callable[[Any], None]) -> None:
        if self._fired:
            engine.schedule(0, lambda: resume(self._value))
        else:
            self._waiters.append(resume)


class Barrier(_Waitable):
    """Wait until ``parties`` arrivals — the synchronized flow of Filebench.

    Each participant calls :meth:`arrive`; processes can also ``yield``
    the barrier to block until the generation completes.  The barrier
    resets automatically, so cyclic workflows reuse one instance.
    """

    def __init__(self, engine: Engine, parties: int):
        if parties < 1:
            raise SimulationError(f"barrier needs >=1 parties, got {parties}")
        self._engine = engine
        self.parties = parties
        self._count = 0
        self.generation = 0
        self._waiters: List[Callable[[Any], None]] = []

    def arrive(self) -> None:
        """Record one arrival; releases all waiters on the last arrival."""
        self._count += 1
        if self._count >= self.parties:
            self._count = 0
            self.generation += 1
            waiters, self._waiters = self._waiters, []
            gen = self.generation
            for resume in waiters:
                self._engine.schedule(0, lambda r=resume, g=gen: r(g))

    def _arm(self, engine: Engine, resume: Callable[[Any], None]) -> None:
        self._waiters.append(resume)


class _AllOf(_Waitable):
    """Composite waitable: fires when every child has fired."""

    def __init__(self, children: List[Signal]):
        self.children = children

    def _arm(self, engine: Engine, resume: Callable[[Any], None]) -> None:
        remaining = [len(self.children)]
        if remaining[0] == 0:
            engine.schedule(0, lambda: resume([]))
            return

        def child_done(_value: Any) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                resume([c.value for c in self.children])

        for child in self.children:
            child._arm(engine, child_done)


def all_of(signals: List[Signal]) -> _AllOf:
    """Waitable that completes when all ``signals`` have fired."""
    return _AllOf(list(signals))


class Process:
    """Drives a generator as a simulated process.

    The generator receives the :class:`Process` as its single argument
    and yields waitables.  When the generator returns, the process is
    finished; :attr:`done` is a :class:`Signal` fired at that moment.
    """

    def __init__(self, engine: Engine, body: Callable[["Process"], Generator],
                 name: str = "proc"):
        self.engine = engine
        self.name = name
        self.done = Signal(engine)
        self._gen: Optional[Generator] = body(self)
        self._alive = True
        # Start on a zero-delay event so construction order does not
        # matter within a tick.
        engine.schedule(0, lambda: self._resume(None))

    # Convenience constructors for waitables ---------------------------
    def timeout(self, delay: int) -> Timeout:
        """Waitable for ``delay`` simulated nanoseconds."""
        return Timeout(delay)

    def signal(self) -> Signal:
        """Fresh one-shot signal bound to this process's engine."""
        return Signal(self.engine)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def kill(self) -> None:
        """Terminate the process; its generator is closed immediately."""
        if not self._alive:
            return
        self._alive = False
        gen, self._gen = self._gen, None
        if gen is not None:
            gen.close()
        if not self.done.fired:
            self.done.fire(None)

    def _resume(self, value: Any) -> None:
        if not self._alive or self._gen is None:
            return
        try:
            waitable = self._gen.send(value)
        except StopIteration as stop:
            self._alive = False
            self._gen = None
            self.done.fire(getattr(stop, "value", None))
            return
        if not isinstance(waitable, _Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded {waitable!r}, "
                "expected a Timeout/Signal/Barrier"
            )
        waitable._arm(self.engine, self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"
