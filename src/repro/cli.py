"""``vscsistats`` — the command-line surface of the reproduction.

Subcommands:

* ``list`` — enumerate the reproducible paper artifacts.
* ``run <experiment>`` — regenerate one figure/table and print it in
  the paper's layout (``--quick`` for scaled-down parameters).
* ``demo`` — the 30-second tour: a small mixed workload, its
  histograms, and its characterization.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.report import render_histogram
from .experiments.runner import EXPERIMENTS, run_experiment
from .experiments.table2 import Table2Result, render_table2

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    for experiment in EXPERIMENTS:
        print(f"{experiment.exp_id.ljust(width)}  {experiment.title}")
    return 0


def _print_result(exp_id: str, result: object) -> None:
    if isinstance(result, Table2Result):
        print(render_table2(result))
        return
    # Figure results: render every histogram attribute they carry.
    from .core.histogram import Histogram

    for attr in vars(result):
        value = getattr(result, attr)
        if isinstance(value, Histogram):
            print(render_histogram(value, title=f"{exp_id}: {attr}"))
            print()
        elif isinstance(value, (int, float, str)) and not attr.startswith("_"):
            print(f"{exp_id}: {attr} = {value}")


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, quick=args.quick)
    _print_result(args.experiment, result)
    if args.export is not None:
        _export_result(args.experiment, result, args.export)
        print(f"\nwrote {args.export}")
    return 0


def _export_result(exp_id: str, result: object, path: str) -> None:
    """Serialize every histogram/collector the result carries to JSON."""
    import json

    from .core.collector import VscsiStatsCollector
    from .core.histogram import Histogram
    from .core.histogram2d import TimeSeriesHistogram

    payload = {"experiment": exp_id, "fields": {}}
    for attr, value in vars(result).items():
        if isinstance(value, Histogram):
            payload["fields"][attr] = value.to_dict()
        elif isinstance(value, TimeSeriesHistogram):
            payload["fields"][attr] = value.to_dict()
        elif isinstance(value, VscsiStatsCollector):
            payload["fields"][attr] = value.to_dict()
        elif isinstance(value, (int, float, str, bool)):
            payload["fields"][attr] = value
    with open(path, "w") as fileobj:
        json.dump(payload, fileobj, indent=2, sort_keys=True)


def _cmd_demo(_args: argparse.Namespace) -> int:
    from .experiments.setups import reference_testbed
    from .sim.engine import seconds
    from .workloads.iometer import AccessSpec, IometerWorkload

    bed = reference_testbed("cx3")
    vm = bed.esx.create_vm("demo-vm")
    device = bed.esx.create_vdisk(vm, "scsi0:0", bed.array, 2 * 1024**3)
    bed.esx.stats.enable()
    spec = AccessSpec("demo mixed", io_bytes=8192, read_fraction=0.7,
                      random_fraction=0.6, outstanding=8)
    IometerWorkload(bed.engine, device, spec).start()
    bed.engine.run(until=seconds(5))
    collector = bed.esx.collector_for("demo-vm", "scsi0:0")
    assert collector is not None
    print(render_histogram(collector.io_length.all, title="I/O Length"))
    print()
    print(render_histogram(collector.seek_distance.all,
                           title="Seek Distance"))
    print()
    print(render_histogram(collector.latency_us.all, title="Latency (us)"))
    print()
    from .analysis.summary import workload_report

    print(workload_report(collector, heading="demo-vm/scsi0:0",
                          panels=False))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vscsistats",
        description="Reproduction of the IISWC 2007 vSCSI workload "
        "characterization paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible artifacts")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment", choices=[e.exp_id for e in EXPERIMENTS]
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="scaled-down parameters (seconds instead of minutes)",
    )
    run_parser.add_argument(
        "--export", metavar="FILE", default=None,
        help="write the result's histograms to FILE as JSON",
    )

    subparsers.add_parser("demo", help="30-second live demo")

    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "demo": _cmd_demo}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
