"""``vscsistats`` — the command-line surface of the reproduction.

Subcommands:

* ``list`` — enumerate the reproducible paper artifacts.
* ``run <experiment>`` — regenerate one figure/table and print it in
  the paper's layout (``--quick`` for scaled-down parameters); or
  ``run --all [--jobs N]`` to regenerate the whole registry, fanned
  out over worker processes.  ``--output json`` prints a machine-
  readable document instead of rendered panels.
* ``demo`` — the 30-second tour: a small mixed workload, its
  histograms, and its characterization.
* ``serve`` — run the live characterization daemon
  (:mod:`repro.live`): network ingestion, epoch rotation, OpenMetrics.
* ``publish`` — stream an existing trace file, sharded trace
  directory, or a freshly simulated workload (``demo``) to a running
  daemon as live traffic.
* ``watch`` — tail the rolling workload verdicts of the online
  fingerprint/drift stage (:mod:`repro.analysis.online`): against a
  running daemon it polls the ``verdicts`` control op; against a store
  directory it replays the recorded epochs through a local analyzer
  and keeps tailing for new ones.
* ``store`` — operate on a durable histogram store
  (:mod:`repro.store`): ``query`` a time range, ``compact`` into
  coarser tiers, ``inspect`` segments and spans.
* ``fleet`` — the hierarchical aggregation tier (:mod:`repro.fleet`):
  ``serve`` an aggregator node (root or regional), ``attach`` a
  simulated leaf publisher, and query the tree with ``topk``,
  ``percentile`` and ``status``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional

from .core.report import render_histogram
from .experiments.runner import EXPERIMENTS, run_experiment
from .experiments.table2 import Table2Result, render_table2

__all__ = ["main"]


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The document lands in a same-directory temp file and is renamed
    into place, so readers (and a killed CLI) never observe a
    partially written export.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fileobj:
            fileobj.write(text)
            fileobj.flush()
            os.fsync(fileobj.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(e.exp_id) for e in EXPERIMENTS)
    for experiment in EXPERIMENTS:
        print(f"{experiment.exp_id.ljust(width)}  {experiment.title}")
    return 0


def _result_fields(result: object):
    """``(attr, value)`` pairs of a result object, slots or dict."""
    try:
        items = vars(result).items()
    except TypeError:  # __slots__-only result objects
        items = (
            (attr, getattr(result, attr))
            for attr in getattr(type(result), "__slots__", ())
        )
    return [(attr, value) for attr, value in items
            if not attr.startswith("_")]


def _print_result(exp_id: str, result: object) -> None:
    """Render a result: histograms as panels, everything else as
    labelled lines — no field is silently skipped."""
    if isinstance(result, Table2Result):
        print(render_table2(result))
        return
    from .experiments.ssd_vs_disk import SsdVsDiskResult

    if isinstance(result, SsdVsDiskResult):
        print(result.report())
        return
    from .core.collector import VscsiStatsCollector
    from .core.histogram import Histogram
    from .core.histogram2d import TimeSeriesHistogram

    for attr, value in _result_fields(result):
        if isinstance(value, Histogram):
            print(render_histogram(value, title=f"{exp_id}: {attr}"))
            print()
        elif isinstance(value, TimeSeriesHistogram):
            print(f"{exp_id}: {attr} = <time series {value.name!r}: "
                  f"{value.num_slots} slots, {value.count} observations>")
        elif isinstance(value, VscsiStatsCollector):
            print(f"{exp_id}: {attr} = <collector: {value.commands} commands, "
                  f"{value.read_commands}R/{value.write_commands}W, "
                  f"{value.total_bytes} bytes>")
        elif isinstance(value, (int, float, str, bool)) or value is None:
            print(f"{exp_id}: {attr} = {value}")
        elif isinstance(value, (list, tuple, set, frozenset, dict)):
            print(f"{exp_id}: {attr} = <{type(value).__name__} of "
                  f"{len(value)} items>")
        else:
            print(f"{exp_id}: {attr} = {value!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    if args.all and args.experiment is not None:
        print("run: give either one experiment id or --all, not both",
              file=sys.stderr)
        return 2
    if not args.all and args.experiment is None:
        print("run: an experiment id (or --all) is required",
              file=sys.stderr)
        return 2

    if args.all:
        from .experiments.runner import run_all_experiments

        results = run_all_experiments(quick=args.quick, jobs=args.jobs)
    else:
        results = {args.experiment: run_experiment(args.experiment,
                                                   quick=args.quick)}

    if args.output == "json":
        payload = {exp_id: _result_payload(exp_id, result)
                   for exp_id, result in results.items()}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for index, (exp_id, result) in enumerate(results.items()):
            if index:
                print()
            _print_result(exp_id, result)
    if args.export is not None:
        payload = {exp_id: _result_payload(exp_id, result)
                   for exp_id, result in results.items()}
        if not args.all:
            payload = payload[args.experiment]
        _atomic_write_text(
            args.export,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        if args.output != "json":
            print(f"\nwrote {args.export}")
    return 0


def _jsonable(value: object):
    """Recursively convert a result value to JSON-encodable form.

    Anything exporting ``to_dict`` uses it; dataclasses and containers
    recurse (so a dict of collectors serializes, unlike a plain
    ``dataclasses.asdict``); everything else degrades to ``repr`` —
    no field is ever dropped from the document.
    """
    import dataclasses

    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return repr(value)


def _result_payload(exp_id: str, result: object) -> dict:
    """JSON-exportable form of every field a result carries."""
    return {
        "experiment": exp_id,
        "fields": {attr: _jsonable(value)
                   for attr, value in _result_fields(result)},
    }


def _cmd_demo(_args: argparse.Namespace) -> int:
    from .experiments.setups import reference_testbed
    from .sim.engine import seconds
    from .workloads.iometer import AccessSpec, IometerWorkload

    bed = reference_testbed("cx3")
    vm = bed.esx.create_vm("demo-vm")
    device = bed.esx.create_vdisk(vm, "scsi0:0", bed.array, 2 * 1024**3)
    bed.esx.stats.enable()
    spec = AccessSpec("demo mixed", io_bytes=8192, read_fraction=0.7,
                      random_fraction=0.6, outstanding=8)
    IometerWorkload(bed.engine, device, spec).start()
    bed.engine.run(until=seconds(5))
    collector = bed.esx.collector_for("demo-vm", "scsi0:0")
    assert collector is not None
    print(render_histogram(collector.io_length.all, title="I/O Length"))
    print()
    print(render_histogram(collector.seek_distance.all,
                           title="Seek Distance"))
    print()
    print(render_histogram(collector.latency_us.all, title="Latency (us)"))
    print()
    from .analysis.summary import workload_report

    print(workload_report(collector, heading="demo-vm/scsi0:0",
                          panels=False))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import socket as socket_module
    import time

    uplink = None
    if args.uplink is not None:
        from .faults import activate_from_env
        from .fleet import FleetUplink, parse_parents

        activate_from_env()
        host_id = args.host_id or socket_module.gethostname()
        uplink = FleetUplink(parse_parents(args.uplink), host=host_id)
    on_seal = uplink.on_seal if uplink is not None else None

    if args.workers > 1:
        from .live import ClusterServer

        server = ClusterServer(
            host=args.host, port=args.port, workers=args.workers,
            shards=args.shards, queue_depth=args.queue_depth,
            backpressure=args.backpressure,
            idle_timeout=args.idle_timeout,
            rotate_every=args.rotate_every, store=args.store,
            on_seal=on_seal,
        )
    else:
        from .live import LiveStatsServer

        server = LiveStatsServer(
            host=args.host, port=args.port, shards=args.shards,
            queue_depth=args.queue_depth, backpressure=args.backpressure,
            idle_timeout=args.idle_timeout, rotate_every=args.rotate_every,
            store=args.store, on_seal=on_seal,
        )
    if uplink is not None:
        uplink.start()
    server.start()
    host, port = server.address
    if args.workers > 1:
        mode = ("fd-passing fallback" if server.fd_passing
                else "SO_REUSEPORT")
        chost, cport = server.control_address
        print(f"repro.live: cluster of {args.workers} workers sharing "
              f"{host}:{port} via {mode} "
              f"(shards={args.shards}/worker, "
              f"backpressure={args.backpressure})", flush=True)
        print(f"repro.live: coordinator control endpoint on "
              f"{chost}:{cport}", flush=True)
    else:
        print(f"repro.live: listening on {host}:{port} "
              f"(shards={args.shards}, backpressure={args.backpressure})",
              flush=True)
    if args.store is not None:
        print(f"repro.live: persisting sealed epochs to {args.store}",
              flush=True)
    if uplink is not None:
        print(f"repro.live: forwarding sealed epochs as host "
              f"{uplink.host} to fleet parents {args.uplink}", flush=True)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive mode
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        server.close()
        if uplink is not None:
            uplink.drain(timeout=30.0)
            uplink.close()
            up = uplink.info()
            print(f"repro.live: uplink forwarded "
                  f"{up['forwarded_total']} epoch snapshots "
                  f"({up['retries_total']} retries, "
                  f"{up['reparents_total']} re-parents, "
                  f"{up['pending']} unsent)", flush=True)
        info = server.info()
        if args.workers > 1:
            print(f"repro.live: drained; {info['epoch_records']} records "
                  f"in {info['epochs_sealed']} epochs "
                  f"({info['worker_deaths_total']} worker deaths)",
                  flush=True)
        else:
            print(f"repro.live: drained; {info['records_total']} records "
                  f"in {info['epochs_sealed']} epochs "
                  f"({info['dropped_records_total']} dropped, "
                  f"{info['rejected_frames_total']} rejected frames)",
                  flush=True)
        if info["degraded"]:
            errors = "; ".join(e["error"] for e in info["persist_errors"])
            print(f"repro.live: DEGRADED — store persistence failed "
                  f"({errors}); quarantined epoch snapshots, if any, "
                  f"are under <store>/quarantine/", flush=True)
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from .live import (
        DEFAULT_FRAME_RECORDS,
        LiveError,
        LiveStatsClient,
        publish_source,
    )

    frame_records = args.frame_records or DEFAULT_FRAME_RECORDS
    try:
        with LiveStatsClient(args.host, args.port, timeout=args.timeout,
                             retries=args.retries) as client:
            result = publish_source(
                client, args.source, vm=args.vm, vdisk=args.vdisk,
                frame_records=frame_records,
                demo_seconds=args.demo_seconds,
            )
            retried = result.get("retried", 0)
            retry_note = f", {retried} frames retried" if retried else ""
            print(f"published {result['accepted']}/{result['records']} "
                  f"records in {result['frames']} frames "
                  f"(dropped {result['dropped']}, "
                  f"ignored {result['ignored']}{retry_note})")
            if args.rotate:
                rotated = client.rotate()
                print(f"rotated: epoch {rotated['epoch']} sealed with "
                      f"{rotated['records']} records over "
                      f"{rotated['disks']} disks")
            if args.metrics:
                print(client.metrics(), end="")
    except (LiveError, ValueError, OSError) as exc:
        print(f"publish: {exc}", file=sys.stderr)
        return 1
    return 0


def _emit_verdict(verdict, as_json: bool) -> None:
    import json

    from .analysis.online import format_verdict

    if as_json:
        print(json.dumps(verdict.to_dict(), sort_keys=True), flush=True)
    else:
        print(format_verdict(verdict), flush=True)


def _watch_daemon(args: argparse.Namespace, host: str, port: int) -> int:
    import time

    from .analysis.online import EpochVerdict
    from .live import LiveError, LiveStatsClient

    seen = {}
    deadline = (None if args.duration is None
                else time.monotonic() + args.duration)
    try:
        with LiveStatsClient(host, port, timeout=args.timeout) as client:
            while True:
                doc = client.verdicts()
                if not doc.get("online"):
                    print("watch: the daemon is running with the online "
                          "analyzer disabled", file=sys.stderr)
                    return 1
                disks = doc.get("disks", {})
                for key in sorted(disks):
                    vdoc = disks[key]
                    if seen.get(key) == vdoc["epoch"]:
                        continue  # already shown this epoch's verdict
                    seen[key] = vdoc["epoch"]
                    _emit_verdict(EpochVerdict.from_dict(vdoc), args.json)
                if args.once or (deadline is not None
                                 and time.monotonic() >= deadline):
                    print(f"watch: {doc['epochs_seen']} epochs, "
                          f"{doc['verdicts_total']} verdicts, "
                          f"{doc['drift_events_total']} drift events",
                          file=sys.stderr)
                    return 0
                time.sleep(args.interval)
    except (LiveError, OSError, ValueError) as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 1


def _drain_epoch_groups(pending: list, final: bool):
    """Split tailed records into complete epoch groups + held-back tail.

    Records of one sealed epoch share ``(start_ns, end_ns)`` and are
    appended consecutively, so grouping consecutive items by span
    recovers the epoch structure.  The newest span is held back until a
    later span proves it complete (a poll can catch an epoch's records
    mid-append) — unless ``final``, which flushes everything.
    """
    groups, current_span, current = [], None, []
    for item in pending:
        span = item[0]
        if span != current_span:
            if current:
                groups.append(current)
            current_span, current = span, [item]
        else:
            current.append(item)
    if current:
        groups.append(current)
    if final or not groups:
        return groups, []
    return groups[:-1], groups[-1]


def _watch_store(args: argparse.Namespace) -> int:
    import time

    from .analysis.online import DriftConfig, OnlineAnalyzer
    from .store import HistogramStore

    try:
        config = DriftConfig(threshold=args.threshold,
                             hysteresis_k=args.hysteresis,
                             min_commands=args.min_commands)
    except ValueError as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 2
    analyzer = OnlineAnalyzer(config)
    watermark = -1
    pending: list = []
    epoch_index = 0
    deadline = (None if args.duration is None
                else time.monotonic() + args.duration)
    while True:
        try:
            store = HistogramStore.open(args.target, readonly=True)
        except ValueError as exc:
            print(f"watch: {exc}", file=sys.stderr)
            return 1
        try:
            # Materialize collectors before closing: the records view
            # borrows the store's segment mmaps.
            for record in store.tail(watermark):
                watermark = record.seq
                if record.tier != 0:
                    continue  # compacted granule, not a raw epoch
                pending.append(((record.start_ns, record.end_ns),
                                (record.vm, record.vdisk), record.load()))
        finally:
            store.close()
        final = args.once or (deadline is not None
                              and time.monotonic() >= deadline)
        groups, pending = _drain_epoch_groups(pending, final)
        for group in groups:
            pairs = [(key, collector) for _span, key, collector in group]
            for verdict in analyzer.observe_epoch(pairs, index=epoch_index):
                _emit_verdict(verdict, args.json)
            epoch_index += 1
        if final:
            break
        time.sleep(args.interval)
    print(f"watch: {analyzer.epochs_seen} epochs, "
          f"{analyzer.verdicts_total} verdicts, "
          f"{analyzer.drift_events_total} drift events", file=sys.stderr)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    if os.path.isdir(args.target):
        return _watch_store(args)
    host, _sep, port_text = args.target.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"watch: {args.target!r} is neither a store directory "
              f"nor a HOST:PORT address", file=sys.stderr)
        return 2
    return _watch_daemon(args, host or "127.0.0.1", port)


_NS_PER_SECOND = 1_000_000_000


def _unix_to_ns(seconds: Optional[float]) -> Optional[int]:
    return None if seconds is None else int(seconds * _NS_PER_SECOND)


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from .store import HistogramStore

    # Reads open without the writer lock (and without destructive
    # recovery), so query/inspect work against a store a live
    # ``serve --store`` daemon is writing; compact needs the lock.
    readonly = args.store_command in ("query", "inspect")
    try:
        store = HistogramStore.open(args.directory, readonly=readonly)
    except ValueError as exc:
        print(f"store: {exc}", file=sys.stderr)
        return 1
    try:
        if args.store_command == "inspect":
            print(json.dumps(store.inspect(), indent=2, sort_keys=True))
            return 0

        if args.store_command == "compact":
            summary = {}
            if args.retire_before is not None:
                # Retire whole aged segments before the rewrite below
                # collapses everything into a single segment (after
                # which only a fully aged-out store could retire).
                summary["segments_retired"] = store.retire_segments(
                    _unix_to_ns(args.retire_before)
                )
            retain_before = _unix_to_ns(args.retain_before)
            summary.update(store.compact(retain_before_ns=retain_before))
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0

        # query
        start_ns = _unix_to_ns(args.start)
        end_ns = _unix_to_ns(args.end)
        if start_ns is None or end_ns is None:
            info = store.inspect()
            if info["records"] == 0:
                print("store: nothing stored yet, nothing to query",
                      file=sys.stderr)
                return 1
            if start_ns is None:
                start_ns = info["start_ns"]
            if end_ns is None:
                end_ns = info["end_ns"] - 1  # half-open -> inclusive
        try:
            result = store.query(start_ns, end_ns, vm=args.vm,
                                 vdisk=args.vdisk)
        except ValueError as exc:
            print(f"store: {exc}", file=sys.stderr)
            return 1
        if args.output == "openmetrics":
            from .live.exposition import render_openmetrics

            text = render_openmetrics(
                result.service.collectors(),
                {"query_records": result.records,
                 "query_epochs": result.epochs},
            )
        else:
            text = json.dumps(result.to_dict(), indent=2,
                              sort_keys=True) + "\n"
        if args.export is not None:
            _atomic_write_text(args.export, text)
            print(f"wrote {args.export}")
        else:
            print(text, end="")
        return 0
    finally:
        store.close()


def _fleet_address(spec: str):
    from .fleet import parse_parents

    parents = parse_parents(spec)
    if len(parents) != 1:
        raise ValueError(f"expected one HOST:PORT address, got {spec!r}")
    return parents[0]


def _fleet_source_columns(args: argparse.Namespace):
    """Load the attach source as trace columns (demo or VSCSITR1 file)."""
    from pathlib import Path

    if args.source == "demo":
        from .live import capture_workload

        return capture_workload(seconds=args.demo_seconds, vm=args.vm,
                                vdisk=args.vdisk)
    path = Path(args.source)
    if not path.is_file():
        raise ValueError(f"no such trace source: {path}")
    from .parallel.trace_io import read_binary_columns

    return read_binary_columns(path)


def _fleet_epoch_chunks(columns, epochs: int):
    """Split columns into ``epochs`` contiguous-in-time chunks.

    Rows are ordered by ``(issue_ns, serial)`` first so each chunk's
    span abuts the next — the order ``DiskStream``'s watermark needs.
    """
    from .parallel.trace_io import TraceColumns

    rows = sorted(zip(*columns.columns()), key=lambda r: (r[1], r[0]))
    total = len(rows)
    if total == 0:
        return []
    epochs = max(1, min(epochs, total))
    base, extra = divmod(total, epochs)
    chunks, start = [], 0
    for i in range(epochs):
        size = base + (1 if i < extra else 0)
        part = rows[start:start + size]
        start += size
        chunks.append(TraceColumns(*(list(col) for col in zip(*part))))
    return chunks


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    import time

    from .faults import activate_from_env
    from .fleet import FleetAggregator, parse_parents

    activate_from_env()
    parents = parse_parents(args.parents) if args.parents else None
    aggregator = FleetAggregator(
        host=args.host, port=args.port, node=args.node, parents=parents,
        store=args.store, idle_timeout=args.idle_timeout,
    )
    aggregator.start()
    host, port = aggregator.address
    print(f"repro.fleet: {aggregator.role} node {aggregator.node} "
          f"listening on {host}:{port}", flush=True)
    if parents is not None:
        print(f"repro.fleet: relaying applied snapshots to {args.parents}",
              flush=True)
    if args.store is not None:
        print(f"repro.fleet: persisting applied snapshots to {args.store}",
              flush=True)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive mode
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode
        pass
    finally:
        aggregator.close()
        info = aggregator.info()
        stale = info["staleness"]
        p99 = stale.get("p99")
        stale_note = (f", staleness p99 {p99:.3f}s"
                      if p99 is not None else "")
        print(f"repro.fleet: drained; applied "
              f"{info['epochs_applied_total']} epochs from "
              f"{info['hosts']} hosts "
              f"({info['duplicate_snapshots_total']} duplicates, "
              f"{info['rejected_frames_total']} rejected frames"
              f"{stale_note})", flush=True)
        if info["degraded"]:
            errors = "; ".join(e["error"] for e in info["persist_errors"])
            print(f"repro.fleet: DEGRADED — store persistence failed "
                  f"({errors})", flush=True)
    return 0


def _cmd_fleet_attach(args: argparse.Namespace) -> int:
    from .faults import activate_from_env
    from .fleet import FleetUplink, parse_parents
    from .live import EpochLedger
    from .live.stream import DiskStream

    activate_from_env()
    try:
        columns = _fleet_source_columns(args)
        chunks = _fleet_epoch_chunks(columns, args.epochs)
    except (OSError, ValueError) as exc:
        print(f"fleet attach: {exc}", file=sys.stderr)
        return 1
    uplink = FleetUplink(parse_parents(args.parents), host=args.host_id,
                         jitter_seed=args.jitter_seed)
    stream = DiskStream()
    ledger = EpochLedger()
    key = (args.vm, args.vdisk)
    uplink.start()
    try:
        for chunk in chunks:
            stream.ingest(chunk)
            collector = stream.seal()
            if collector is None:
                continue
            epoch = ledger.seal([(key, collector)])
            uplink.forward_epoch(epoch)
        drained = uplink.drain(timeout=args.timeout)
    finally:
        uplink.close()
        info = uplink.info()
        print(f"repro.fleet: host {uplink.host} forwarded "
              f"{info['forwarded_total']}/{len(ledger)} epochs "
              f"({len(columns)} records) to {args.parents} "
              f"({info['retries_total']} retries, "
              f"{info['reconnects_total']} reconnects, "
              f"{info['reparents_total']} re-parents)", flush=True)
    if not drained or info["pending"]:
        print(f"fleet attach: {info['pending']} snapshots unsent after "
              f"{args.timeout:.0f}s", file=sys.stderr)
        return 1
    return 0


def _fleet_query(address: str, op, timeout: float):
    from .fleet import fleet_rpc

    return fleet_rpc(_fleet_address(address), op, timeout=timeout)


def _cmd_fleet_topk(args: argparse.Namespace) -> int:
    from .live import LiveError

    try:
        doc = _fleet_query(args.address,
                           {"op": "topk", "metric": args.metric,
                            "k": args.k}, args.timeout)
    except (LiveError, ValueError, OSError) as exc:
        print(f"fleet topk: {exc}", file=sys.stderr)
        return 1
    print(f"top {len(doc['top'])} of {doc['disks']} disks "
          f"by {doc['metric']}:")
    for rank, row in enumerate(doc["top"], start=1):
        print(f"  {rank:2d}. {row['vm']}/{row['vdisk']}  "
              f"{row['value']:g}")
    return 0


def _cmd_fleet_percentile(args: argparse.Namespace) -> int:
    from .live import LiveError

    try:
        doc = _fleet_query(args.address,
                           {"op": "percentile", "family": args.family,
                            "q": args.q, "io": args.io}, args.timeout)
    except (LiveError, ValueError, OSError) as exc:
        print(f"fleet percentile: {exc}", file=sys.stderr)
        return 1
    estimate = doc["estimate"]
    shown = "overflow" if estimate is None else f"<= {estimate:g}"
    unit = f" {doc['unit']}" if doc.get("unit") else ""
    print(f"fleet p{doc['q'] * 100:g} {doc['family']}.{doc['op']}: "
          f"{shown}{unit} ({doc['count']} samples)")
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    from .live import LiveError

    op = {"op": "metrics"} if args.metrics else {"op": "status"}
    try:
        doc = _fleet_query(args.address, op, args.timeout)
    except (LiveError, ValueError, OSError) as exc:
        print(f"fleet status: {exc}", file=sys.stderr)
        return 1
    if args.metrics:
        print(doc, end="")
    else:
        print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    handlers = {"serve": _cmd_fleet_serve, "attach": _cmd_fleet_attach,
                "topk": _cmd_fleet_topk,
                "percentile": _cmd_fleet_percentile,
                "status": _cmd_fleet_status}
    return handlers[args.fleet_command](args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vscsistats",
        description="Reproduction of the IISWC 2007 vSCSI workload "
        "characterization paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list reproducible artifacts")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or --all)"
    )
    run_parser.add_argument(
        "experiment", nargs="?", default=None,
        choices=[e.exp_id for e in EXPERIMENTS],
    )
    run_parser.add_argument(
        "--all", action="store_true",
        help="run every experiment in the registry",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="with --all: fan experiments out over N worker processes",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="scaled-down parameters (seconds instead of minutes)",
    )
    run_parser.add_argument(
        "--output", choices=["text", "json"], default="text",
        help="print rendered panels (text) or a JSON document (json)",
    )
    run_parser.add_argument(
        "--export", metavar="FILE", default=None,
        help="write the result's histograms to FILE as JSON",
    )

    subparsers.add_parser("demo", help="30-second live demo")

    serve_parser = subparsers.add_parser(
        "serve", help="run the live characterization daemon"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=7077,
        help="TCP port (0 picks a free port and prints it)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="ingest worker processes sharing the port via SO_REUSEPORT "
        "(N > 1 runs the multi-process cluster; 1 runs the classic "
        "single-process daemon)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="shard worker threads (disks hash to shards; per worker "
        "process in cluster mode)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="bounded per-shard queue depth",
    )
    serve_parser.add_argument(
        "--backpressure", choices=["block", "drop"], default="block",
        help="full-queue policy: stall the sender or shed the frame",
    )
    serve_parser.add_argument(
        "--idle-timeout", type=float, default=60.0, metavar="SECONDS",
        help="disconnect clients silent for this long",
    )
    serve_parser.add_argument(
        "--rotate-every", type=float, default=None, metavar="SECONDS",
        help="seal an epoch automatically on this wall-clock period",
    )
    serve_parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for a fixed time then drain and exit "
        "(default: run until interrupted)",
    )
    serve_parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="persist every sealed epoch to a durable histogram store "
        "at DIR (created if missing)",
    )
    serve_parser.add_argument(
        "--uplink", metavar="HOST:PORT[,HOST:PORT...]", default=None,
        help="forward every sealed epoch snapshot to these fleet "
        "aggregator parents (first is primary, rest are failovers)",
    )
    serve_parser.add_argument(
        "--host-id", default=None, metavar="NAME",
        help="host identity stamped on forwarded snapshots "
        "(default: the machine hostname)",
    )

    publish_parser = subparsers.add_parser(
        "publish", help="stream a trace source to a running daemon"
    )
    publish_parser.add_argument(
        "source",
        help="a VSCSITR1 trace file, a sharded trace directory, 'demo' "
        "to synthesize a short simulated workload, or "
        "'pattern:<name>[@seed]' to drive a named LBA-pattern preset "
        "(seq-read-64k, zipf-write-4k, ...)",
    )
    publish_parser.add_argument("--host", default="127.0.0.1")
    publish_parser.add_argument("--port", type=int, default=7077)
    publish_parser.add_argument(
        "--vm", default=None, help="VM label for single-file sources"
    )
    publish_parser.add_argument(
        "--vdisk", default=None,
        help="virtual disk label for single-file sources",
    )
    publish_parser.add_argument(
        "--frame-records", type=int, default=None, metavar="N",
        help="records per data frame",
    )
    publish_parser.add_argument(
        "--demo-seconds", type=float, default=2.0, metavar="SECONDS",
        help="simulated duration for the 'demo' source",
    )
    publish_parser.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="socket timeout",
    )
    publish_parser.add_argument(
        "--retries", type=int, default=4, metavar="N",
        help="data-frame retry budget on connection failures "
             "(retried frames are deduplicated server-side; 0 disables)",
    )
    publish_parser.add_argument(
        "--rotate", action="store_true",
        help="seal an epoch after publishing",
    )
    publish_parser.add_argument(
        "--metrics", action="store_true",
        help="print the OpenMetrics exposition afterwards",
    )

    watch_parser = subparsers.add_parser(
        "watch",
        help="tail rolling workload verdicts and drift events",
    )
    watch_parser.add_argument(
        "target", metavar="HOST:PORT|STORE_DIR",
        help="a running daemon's address, or a histogram store "
        "directory to replay and tail",
    )
    watch_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll period",
    )
    watch_parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="watch this long, then print a summary and exit "
        "(default: run until interrupted)",
    )
    watch_parser.add_argument(
        "--once", action="store_true",
        help="process everything currently visible, then exit",
    )
    watch_parser.add_argument(
        "--json", action="store_true",
        help="print verdicts as JSON lines instead of the rolling text",
    )
    watch_parser.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="daemon mode: socket timeout",
    )
    watch_parser.add_argument(
        "--threshold", type=float, default=0.35,
        help="store mode: TV-distance drift threshold",
    )
    watch_parser.add_argument(
        "--hysteresis", type=int, default=3, metavar="K",
        help="store mode: consecutive drifting epochs to fire an event",
    )
    watch_parser.add_argument(
        "--min-commands", type=int, default=100, metavar="N",
        help="store mode: epochs with fewer commands count as idle",
    )

    store_parser = subparsers.add_parser(
        "store", help="operate on a durable histogram store"
    )
    store_sub = store_parser.add_subparsers(dest="store_command",
                                            required=True)

    store_query = store_sub.add_parser(
        "query", help="merge the epochs overlapping a time range"
    )
    store_query.add_argument("directory", help="store directory")
    store_query.add_argument(
        "--start", type=float, default=None, metavar="UNIX_SECONDS",
        help="range start (default: earliest stored)",
    )
    store_query.add_argument(
        "--end", type=float, default=None, metavar="UNIX_SECONDS",
        help="range end, inclusive (default: latest stored)",
    )
    store_query.add_argument("--vm", default=None,
                             help="restrict to one VM")
    store_query.add_argument("--vdisk", default=None,
                             help="restrict to one virtual disk")
    store_query.add_argument(
        "--output", choices=["json", "openmetrics"], default="json",
        help="document format",
    )
    store_query.add_argument(
        "--export", metavar="FILE", default=None,
        help="write the document to FILE (atomic) instead of stdout",
    )

    store_compact = store_sub.add_parser(
        "compact", help="fold epochs into coarser tiers"
    )
    store_compact.add_argument("directory", help="store directory")
    store_compact.add_argument(
        "--retain-before", type=float, default=None,
        metavar="UNIX_SECONDS",
        help="drop records wholly before this time during the rewrite",
    )
    store_compact.add_argument(
        "--retire-before", type=float, default=None,
        metavar="UNIX_SECONDS",
        help="first unlink whole segments older than this time "
        "(whole-segment granularity; --retain-before drops exact "
        "records during the rewrite)",
    )

    store_inspect = store_sub.add_parser(
        "inspect", help="print segments, spans and WAL state"
    )
    store_inspect.add_argument("directory", help="store directory")

    fleet_parser = subparsers.add_parser(
        "fleet", help="hierarchical fleet-wide snapshot aggregation"
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command",
                                            required=True)

    fleet_serve = fleet_sub.add_parser(
        "serve", help="run an aggregator node (root or regional)"
    )
    fleet_serve.add_argument("--host", default="127.0.0.1")
    fleet_serve.add_argument(
        "--port", type=int, default=7401,
        help="TCP port (0 picks a free port and prints it)",
    )
    fleet_serve.add_argument(
        "--node", default=None, metavar="NAME",
        help="node name shown in status documents",
    )
    fleet_serve.add_argument(
        "--parents", metavar="HOST:PORT[,HOST:PORT...]", default=None,
        help="relay applied snapshots upward to these parents "
        "(omit to run as the root)",
    )
    fleet_serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="persist every applied snapshot to a durable histogram "
        "store at DIR (root nodes typically set this)",
    )
    fleet_serve.add_argument(
        "--idle-timeout", type=float, default=60.0, metavar="SECONDS",
        help="disconnect children silent for this long",
    )
    fleet_serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for a fixed time then drain and exit "
        "(default: run until interrupted)",
    )

    fleet_attach = fleet_sub.add_parser(
        "attach",
        help="publish a source as one leaf host's epoch snapshots",
    )
    fleet_attach.add_argument(
        "parents", metavar="HOST:PORT[,HOST:PORT...]",
        help="aggregator parents (first is primary, rest failovers)",
    )
    fleet_attach.add_argument(
        "source",
        help="a VSCSITR1 trace file or 'demo' to synthesize a workload",
    )
    fleet_attach.add_argument(
        "--host-id", default=None, metavar="NAME",
        help="host identity stamped on snapshots (default: generated)",
    )
    fleet_attach.add_argument("--vm", default="live-demo")
    fleet_attach.add_argument("--vdisk", default="scsi0:0")
    fleet_attach.add_argument(
        "--epochs", type=int, default=4, metavar="N",
        help="split the source into N contiguous epoch snapshots",
    )
    fleet_attach.add_argument(
        "--demo-seconds", type=float, default=2.0, metavar="SECONDS",
        help="simulated duration for the 'demo' source",
    )
    fleet_attach.add_argument(
        "--jitter-seed", type=int, default=None, metavar="SEED",
        help="seed the retry-backoff jitter (reproducible schedules)",
    )
    fleet_attach.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long to wait for every snapshot to be acked",
    )

    fleet_topk = fleet_sub.add_parser(
        "topk", help="fleet-wide hottest disks by a metric"
    )
    fleet_topk.add_argument("address", metavar="HOST:PORT",
                            help="any aggregator node")
    fleet_topk.add_argument(
        "--metric", default="commands",
        help="a scalar (commands, bytes, ...) or "
        "<family>[.<op>][.<stat>] spec, e.g. latency_us.read.mean",
    )
    fleet_topk.add_argument("--k", type=int, default=10)
    fleet_topk.add_argument("--timeout", type=float, default=30.0)

    fleet_pct = fleet_sub.add_parser(
        "percentile", help="fleet-wide percentile from merged bins"
    )
    fleet_pct.add_argument("address", metavar="HOST:PORT")
    fleet_pct.add_argument("--family", default="latency_us")
    fleet_pct.add_argument("--q", type=float, default=0.99)
    fleet_pct.add_argument("--io", choices=["read", "write", "all"],
                           default="all")
    fleet_pct.add_argument("--timeout", type=float, default=30.0)

    fleet_status = fleet_sub.add_parser(
        "status", help="print a node's status document"
    )
    fleet_status.add_argument("address", metavar="HOST:PORT")
    fleet_status.add_argument(
        "--metrics", action="store_true",
        help="print the OpenMetrics exposition instead",
    )
    fleet_status.add_argument("--timeout", type=float, default=30.0)

    args = parser.parse_args(argv)
    handlers = {"list": _cmd_list, "run": _cmd_run, "demo": _cmd_demo,
                "serve": _cmd_serve, "publish": _cmd_publish,
                "watch": _cmd_watch, "store": _cmd_store,
                "fleet": _cmd_fleet}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
