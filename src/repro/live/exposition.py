"""OpenMetrics text exposition of the live characterization state.

Renders every histogram family of every ``(vm, vdisk)`` collector as an
OpenMetrics ``histogram`` with cumulative ``_bucket`` samples.  The
repo's bin convention — bin *i* holds values ``(edges[i-1], edges[i]]``
with a final overflow bin — is exactly the Prometheus convention of
inclusive upper bounds, so each ``le`` label is the bin's upper edge
verbatim and the overflow bin is the ``+Inf`` bucket; bucket values are
the running sum of bin counts, hence monotone non-decreasing by
construction.

Scalar counters (commands, bytes) and the daemon's own operational
counters (frames, records, drops, rejections, epochs, connections)
follow, and the document terminates with the mandatory ``# EOF``.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Dict, Iterable, List, Mapping, Tuple

from ..core.collector import VscsiStatsCollector
from ..core.histogram import Histogram
from ..core.service import DiskKey

__all__ = ["render_openmetrics"]

#: (metric suffix, family attribute) in exposition order.
_FAMILIES = (
    ("io_length_bytes", "io_length"),
    ("seek_distance_sectors", "seek_distance"),
    ("seek_distance_windowed_sectors", "seek_distance_windowed"),
    ("interarrival_us", "interarrival_us"),
    ("outstanding_ios", "outstanding"),
    ("latency_us", "latency_us"),
    ("write_amp_pct", "write_amp_pct"),
    ("gc_pause_us", "gc_pause_us"),
)

_OPS = ("read", "write", "all")


def _escape(value: str) -> str:
    """Escape a label value per the OpenMetrics text format."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(vm: str, vdisk: str, op: str, extra: str = "") -> str:
    return (f'vm="{_escape(vm)}",vdisk="{_escape(vdisk)}",op="{op}"'
            + extra)


def _histogram_samples(name: str, vm: str, vdisk: str, op: str,
                       hist: Histogram, out: List[str]) -> None:
    cumulative = list(accumulate(hist.counts))
    for edge, running in zip(hist.scheme.edges, cumulative):
        le = f',le="{edge}"'
        out.append(f"{name}_bucket{{{_labels(vm, vdisk, op, le)}}} {running}")
    inf = ',le="+Inf"'
    out.append(f"{name}_bucket{{{_labels(vm, vdisk, op, inf)}}} {hist.count}")
    out.append(f"{name}_count{{{_labels(vm, vdisk, op)}}} {hist.count}")
    out.append(f"{name}_sum{{{_labels(vm, vdisk, op)}}} {hist.total}")


def render_openmetrics(
    disks: Iterable[Tuple[DiskKey, VscsiStatsCollector]],
    daemon: Mapping[str, float],
    prefix: str = "vscsi",
    verdicts=None,
) -> str:
    """Render collectors plus daemon counters as OpenMetrics text.

    ``disks`` yields ``((vm, vdisk), collector)`` pairs — typically the
    lifetime merge of every sealed epoch plus the current one, so every
    sample is a monotone counter from the scrape's point of view.
    ``daemon`` maps operational metric names (without the ``live_``
    prefix) to values; ``*_total`` names are typed ``counter``,
    everything else ``gauge``.

    ``verdicts`` (optional) is the online analysis stage's rolling
    per-disk :class:`~repro.analysis.online.EpochVerdict` list; it adds
    the drift gauges — ``live_drift_score{vm,vdisk}``,
    ``live_workload_class{vm,vdisk,class}`` (value 1 for the current
    class, info-style) and ``live_drift_events_total{vm,vdisk}``.
    """
    pairs = sorted(disks)
    out: List[str] = []

    for suffix, attr in _FAMILIES:
        name = f"{prefix}_{suffix}"
        out.append(f"# TYPE {name} histogram")
        for (vm, vdisk), collector in pairs:
            family = getattr(collector, attr)
            for op in _OPS:
                hist = {"read": family.reads, "write": family.writes,
                        "all": family.all}[op]
                _histogram_samples(name, vm, vdisk, op, hist, out)

    out.append(f"# TYPE {prefix}_commands counter")
    for (vm, vdisk), collector in pairs:
        for op, value in (("read", collector.read_commands),
                          ("write", collector.write_commands),
                          ("all", collector.commands)):
            out.append(
                f"{prefix}_commands_total{{{_labels(vm, vdisk, op)}}} {value}"
            )
    out.append(f"# TYPE {prefix}_bytes counter")
    for (vm, vdisk), collector in pairs:
        for op, value in (("read", collector.bytes_read),
                          ("write", collector.bytes_written),
                          ("all", collector.total_bytes)):
            out.append(
                f"{prefix}_bytes_total{{{_labels(vm, vdisk, op)}}} {value}"
            )

    for key in sorted(daemon):
        name = f"live_{key}"
        kind = "counter" if key.endswith("_total") else "gauge"
        type_name = name[:-len("_total")] if kind == "counter" else name
        out.append(f"# TYPE {type_name} {kind}")
        out.append(f"{name} {daemon[key]}")

    if verdicts:
        def disk_labels(v):
            return f'vm="{_escape(v.vm)}",vdisk="{_escape(v.vdisk)}"'

        out.append("# TYPE live_drift_score gauge")
        for v in verdicts:
            out.append(f"live_drift_score{{{disk_labels(v)}}} "
                       f"{v.drift_score}")
        out.append("# TYPE live_workload_class gauge")
        for v in verdicts:
            label = _escape(v.workload_class.value)
            out.append(
                f'live_workload_class{{{disk_labels(v)},'
                f'class="{label}"}} 1'
            )
        out.append("# TYPE live_drift_events counter")
        for v in verdicts:
            out.append(f"live_drift_events_total{{{disk_labels(v)}}} "
                       f"{v.drift_events_total}")

    out.append("# EOF")
    return "\n".join(out) + "\n"
