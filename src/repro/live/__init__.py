"""Online streaming characterization — ``vscsiStats`` as a daemon.

The paper's tool characterizes I/O *while workloads run*; this package
is that layer for the reproduction: a TCP daemon
(:class:`~repro.live.server.LiveStatsServer`) ingesting columnar
``VSCSITR1`` command streams into the batch histogram kernels, with
epoch-rotated snapshots, an enable/disable control plane and an
OpenMetrics exposition; a client
(:class:`~repro.live.client.LiveStatsClient`); and publishers that turn
any existing trace or simulated workload into live traffic
(:mod:`repro.live.publish`).
"""

from .client import (
    DEFAULT_FRAME_RECORDS,
    DEFAULT_RETRIES,
    LiveConnectionError,
    LiveError,
    LiveStatsClient,
)
from .cluster import ClusterServer, HashRing, SnapshotLedger, WorkerRouter
from .epochs import Epoch, EpochLedger
from .exposition import render_openmetrics
from .protocol import ProtocolError
from .publish import (
    capture_pattern,
    capture_workload,
    publish_pattern,
    publish_shard_dir,
    publish_source,
    publish_trace_file,
    publish_workload,
)
from .server import LiveStatsServer
from .stream import DiskStream

__all__ = [
    "ClusterServer",
    "DEFAULT_FRAME_RECORDS",
    "DEFAULT_RETRIES",
    "DiskStream",
    "HashRing",
    "SnapshotLedger",
    "WorkerRouter",
    "Epoch",
    "EpochLedger",
    "LiveConnectionError",
    "LiveError",
    "LiveStatsClient",
    "LiveStatsServer",
    "ProtocolError",
    "capture_pattern",
    "capture_workload",
    "publish_pattern",
    "publish_shard_dir",
    "publish_source",
    "publish_trace_file",
    "publish_workload",
    "render_openmetrics",
]
