"""``repro.live.cluster`` — the multi-process ingest edge.

One :class:`~repro.live.server.LiveStatsServer` tops out around one
core: frame decode, shard queues and the batch kernels all run in a
single interpreter.  The cluster spreads the *ingest* edge across N
worker **processes** while keeping everything the paper's tool promises
— exact histograms, epoch rotation, one durable store, one OpenMetrics
endpoint — byte-identical to a one-process run.

Topology::

                   shared port (SO_REUSEPORT)
    publishers ──┬───────────────┬───────────────┐
                 ▼               ▼               ▼
           worker 0        worker 1   ...   worker N-1      (processes)
           LiveStatsServer (unchanged shard loop, 1 ledger epoch)
                 │ sealed-epoch snapshots (RPHCOL2 frames over a pipe)
                 ▼               ▼               ▼
           ──────────────── fan-in pipes ────────────────
                            coordinator                      (this process)
                 merged history · durable store · /metrics

* Every worker binds the same public ``(host, port)`` with
  ``SO_REUSEPORT``; the kernel load-balances accepted connections.
  Where the option does not exist (or ``force_fd_passing`` is set) the
  coordinator accepts on a single listener and round-robins the
  connected sockets to workers over ``SCM_RIGHTS`` fd-passing.
* Disk ownership is decided by a consistent-hash ring over ``(vm,
  vdisk)`` — the whole-stream ownership rule that makes DATA_SEQ
  ordering and ack-cache dedup per-worker correct.  A frame landing on
  the wrong worker is *redirected* (an ``ERROR`` frame naming the
  owner's private address) before any session state is touched;
  :class:`~repro.live.client.LiveStatsClient` follows redirects and
  caches the route.
* Workers seal epochs locally (coordinator-driven ``worker-rotate``)
  and push the sealed snapshot — per-disk ``RPHCOL2`` collector
  records behind a JSON extent header — down a private pipe.  The
  coordinator merges rounds of snapshots with the vectorized v2
  payload merge (:func:`repro.store.codec.merge_collector_payloads`),
  seals them into its own :class:`~repro.live.epochs.EpochLedger`, and
  alone owns the durable store writer and the exposition.
* A dead worker (pipe EOF without a BYE) bumps the route generation:
  the ring is rebuilt over the survivors and broadcast, publishers get
  redirected to the new owners and replay unacked ``DATA_SEQ`` frames
  there.  Acked-but-unsealed records on the dead worker are lost —
  the cluster trades replication for exactness of everything that
  reached a seal, and says so in ``worker_deaths_total``.

Byte-identity contract: the ``vscsi_*`` exposition block, snapshot
documents and store contents equal a one-process run fed the same
records (pinned by the partition-invariance tests in
``tests/test_live_cluster.py``); the ``live_*`` daemon counters
describe the daemon itself and legitimately differ across topologies.
"""

from __future__ import annotations

import bisect
import json
import multiprocessing
import os
import socket
import struct
import threading
import time
import zlib
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..core.collector import DEFAULT_TIME_SLOT_NS, VscsiStatsCollector
from ..core.service import DiskKey, HistogramService
from ..core.window import DEFAULT_WINDOW_SIZE
from ..faults import activate_from_env, fire
from ..store.codec import collector_to_bytes, merge_collector_payloads
from .client import LiveError
from .epochs import Epoch, EpochLedger
from .exposition import render_openmetrics
from .protocol import (
    FRAME_CONTROL,
    FRAME_ERROR,
    FRAME_OK,
    ProtocolError,
    pack_control,
    pack_error,
    pack_ok,
    pack_text,
    read_frame,
    unpack_control,
)
from .server import LiveStatsServer

__all__ = [
    "ClusterServer",
    "HashRing",
    "SnapshotLedger",
    "WorkerRouter",
    "encode_snapshot",
]

#: Virtual nodes per worker on the hash ring.  Enough that removing a
#: worker spreads its ranges across every survivor instead of dumping
#: them on one neighbour.
DEFAULT_RING_REPLICAS = 64

# ---------------------------------------------------------------------------
# Fan-in frame protocol (worker → coordinator pipe)
# ---------------------------------------------------------------------------
#
#   u32 BE frame length | u8 type | u32 BE header length |
#   header (JSON, UTF-8) | payload bytes
#
# The payload of a SNAPSHOT frame is the concatenation of one
# ``RPHCOL2`` collector record per disk; the header's ``disks`` list
# carries ``{vm, vdisk, off, len}`` extents into it, so the coordinator
# slices records out without copying or decoding until merge time.

FANIN_HELLO = 0x10    #: worker announces {worker, pid, host, port}
FANIN_SNAPSHOT = 0x11  #: sealed epoch: extent header + RPHCOL2 records
FANIN_BYE = 0x12      #: clean shutdown marker (EOF without it = crash)

#: Fan-in frames carry whole sealed epochs (one ~1 KiB record per
#: disk), so the ceiling is per-epoch, not per-batch.
MAX_FANIN_BYTES = 256 * 1024 * 1024

_FANIN_HEAD = struct.Struct("!IBI")  # frame length, type, header length

_ROUND_TIMEOUT = 30.0   #: seconds to wait for one rotation's snapshots
_HELLO_TIMEOUT = 30.0   #: seconds to wait for worker startup
_RPC_TIMEOUT = 30.0     #: per-command worker RPC timeout

_now = time.monotonic


def _pack_fanin(ftype: int, header: Dict, payload: bytes = b"") -> bytes:
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    length = 5 + len(head) + len(payload)
    if length > MAX_FANIN_BYTES:
        raise ValueError(
            f"fan-in frame of {length} bytes exceeds the "
            f"{MAX_FANIN_BYTES} byte ceiling"
        )
    return _FANIN_HEAD.pack(length, ftype, len(head)) + head + payload


def _read_fanin(rfile) -> Optional[Tuple[int, Dict, memoryview]]:
    """One fan-in frame, or ``None`` on clean EOF.

    Raises ``ValueError`` on a torn or oversized frame — the reader
    treats either as the worker dying mid-write.
    """
    prefix = rfile.read(4)
    if not prefix:
        return None
    if len(prefix) != 4:
        raise ValueError("torn fan-in length prefix")
    (length,) = struct.unpack("!I", prefix)
    if length < 5 or length > MAX_FANIN_BYTES:
        raise ValueError(f"implausible fan-in frame length {length}")
    body = rfile.read(length)
    if len(body) != length:
        raise ValueError("torn fan-in frame body")
    ftype = body[0]
    (head_len,) = struct.unpack_from("!I", body, 1)
    if 5 + head_len > length:
        raise ValueError("fan-in header overruns its frame")
    try:
        header = json.loads(bytes(body[5:5 + head_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"bad fan-in header: {exc}") from None
    return ftype, header, memoryview(body)[5 + head_len:]


def encode_snapshot(worker: int, epoch_index: int, pairs,
                    records: int) -> Tuple[Dict, bytes]:
    """Encode one sealed epoch as a SNAPSHOT header + payload.

    ``pairs`` is an iterable of ``((vm, vdisk), collector)``; each
    collector becomes one ``RPHCOL2`` record and an extent entry, so
    the coordinator can slice per-disk payloads without decoding.
    """
    disks = []
    chunks = []
    offset = 0
    for (vm, vdisk), collector in pairs:
        record = collector_to_bytes(collector)
        disks.append({"vm": vm, "vdisk": vdisk,
                      "off": offset, "len": len(record)})
        chunks.append(record)
        offset += len(record)
    header = {"worker": worker, "epoch": epoch_index,
              "records": records, "disks": disks}
    return header, b"".join(chunks)


# ---------------------------------------------------------------------------
# Consistent-hash routing
# ---------------------------------------------------------------------------
class HashRing:
    """Consistent-hash ring of worker indices.

    Each worker contributes ``replicas`` virtual tokens (crc32 of
    ``worker-<i>/<r>``); a disk hashes (crc32 of ``vm\\x00vdisk`` —
    the same digest the in-process shard hash uses) to the first token
    clockwise.  Removing a worker moves only the ranges it owned.
    """

    __slots__ = ("_hashes", "_owners")

    def __init__(self, indices, replicas: int = DEFAULT_RING_REPLICAS):
        tokens = []
        for index in indices:
            for replica in range(replicas):
                digest = zlib.crc32(f"worker-{index}/{replica}".encode())
                tokens.append((digest, index))
        tokens.sort()
        self._hashes = [digest for digest, _ in tokens]
        self._owners = [index for _, index in tokens]

    def owner(self, vm: str, vdisk: str) -> int:
        if not self._hashes:
            raise ValueError("hash ring has no workers")
        digest = zlib.crc32(f"{vm}\x00{vdisk}".encode("utf-8"))
        slot = bisect.bisect_right(self._hashes, digest) % len(self._hashes)
        return self._owners[slot]


class WorkerRouter:
    """One worker's view of the routing table.

    Installed as ``LiveStatsServer.router``: the data plane asks
    :meth:`redirect_for` before touching any session state.  Updates
    carry a generation; a stale broadcast (reordered during a
    reassignment storm) never rolls the table back.
    """

    def __init__(self, index: int, replicas: int = DEFAULT_RING_REPLICAS):
        self.index = index
        self.replicas = replicas
        self.generation = 0
        self._lock = threading.Lock()
        self._table: Dict[int, Tuple[str, int]] = {}
        self._ring: Optional[HashRing] = None

    def update(self, workers, generation: int) -> bool:
        """Install ``[[index, host, port], ...]`` if newer."""
        with self._lock:
            if self._ring is not None and generation <= self.generation:
                return False
            self._table = {int(i): (str(host), int(port))
                           for i, host, port in workers}
            self._ring = HashRing(sorted(self._table), self.replicas)
            self.generation = generation
            return True

    def redirect_for(self, vm: str, vdisk: str) -> Optional[Tuple[str, int]]:
        with self._lock:
            ring = self._ring
            table = self._table
        if ring is None:
            return None  # no table yet: accept everything
        owner = ring.owner(vm, vdisk)
        if owner == self.index:
            return None
        return table[owner]

    def route_info(self) -> Dict:
        with self._lock:
            return {
                "generation": self.generation,
                "replicas": self.replicas,
                "workers": [[index, host, port]
                            for index, (host, port)
                            in sorted(self._table.items())],
            }


# ---------------------------------------------------------------------------
# Coordinator-side snapshot history
# ---------------------------------------------------------------------------
class SnapshotLedger:
    """Epoch history built from worker SNAPSHOT frames.

    Wraps an :class:`EpochLedger` (store persistence, quarantine,
    retirement, span bookkeeping) and keeps the raw per-disk
    ``RPHCOL2`` payloads alongside each sealed epoch, so the lifetime
    merge is a single vectorized
    :func:`~repro.store.codec.merge_collector_payloads` column-stack
    reduce per disk instead of a Python histogram-merge chain per
    epoch.
    """

    def __init__(self, window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 max_epochs: Optional[int] = None, store=None):
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        self.ledger = EpochLedger(window_size=window_size,
                                  time_slot_ns=time_slot_ns,
                                  max_epochs=max_epochs, store=store)
        #: Parallel to ``ledger.epochs``: per sealed epoch, the raw
        #: collector records by disk (usually one per disk; several
        #: when a reassignment made two workers see the same disk in
        #: one round — the merge is exact either way).
        self._epoch_payloads: List[Dict[DiskKey, List[bytes]]] = []

    def seal_round(self, snapshots) -> Epoch:
        """Seal one cluster epoch from ``(header, payload)`` snapshots.

        Slices each worker's payload into per-disk records via the
        header extents, merges them vectorized, and seals the result
        into the wrapped ledger (which persists to the store and
        advances the epoch clock).
        """
        by_disk: Dict[DiskKey, List[bytes]] = {}
        for header, payload in snapshots:
            view = memoryview(payload)
            for extent in header["disks"]:
                key = (extent["vm"], extent["vdisk"])
                record = bytes(view[extent["off"]:
                                    extent["off"] + extent["len"]])
                by_disk.setdefault(key, []).append(record)
        pairs = [(key, merge_collector_payloads(records))
                 for key, records in by_disk.items()]
        epoch = self.ledger.seal(pairs)
        self._epoch_payloads.append(by_disk)
        # Mirror the ledger's max_epochs retirement: the retired
        # aggregate (already merged, bins not payloads) takes over for
        # anything the ledger no longer retains individually.
        while len(self._epoch_payloads) > len(self.ledger.epochs):
            self._epoch_payloads.pop(0)
        return epoch

    def merged_history(self) -> HistogramService:
        """Lifetime merge of every sealed epoch, vectorized.

        One column-stack reduce per disk across all retained epochs'
        raw payloads, plus the ledger's retired aggregate — exact and
        byte-identical to folding the epochs one by one.
        """
        service = HistogramService(window_size=self.window_size,
                                   time_slot_ns=self.time_slot_ns)
        service = service.merge(self.ledger.retired)
        per_disk: Dict[DiskKey, List[bytes]] = {}
        for epoch_map in self._epoch_payloads:
            for key, records in epoch_map.items():
                per_disk.setdefault(key, []).extend(records)
        for key, records in per_disk.items():
            service.adopt(key, merge_collector_payloads(records))
        return service

    def __len__(self) -> int:
        return len(self.ledger)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _forward_to_coordinator(address: Tuple[str, int],
                            payload: bytes) -> bytes:
    """Relay a control payload to the coordinator, returning its
    response frame bytes verbatim (the worker's connection handler
    passes them straight through)."""
    from .protocol import pack_frame
    with socket.create_connection(address, timeout=_RPC_TIMEOUT) as sock:
        sock.sendall(pack_frame(FRAME_CONTROL, payload))
        rfile = sock.makefile("rb")
        frame = read_frame(rfile)
        if frame is None:
            raise ValueError("coordinator closed the control connection")
        ftype, body = frame
        return pack_frame(ftype, body)


def _fd_receive_loop(channel: socket.socket, server: LiveStatsServer) -> None:
    """fd-passing fallback: adopt connections the coordinator sends."""
    while True:
        try:
            _msg, fds, _flags, _addr = socket.recv_fds(channel, 1, 4)
        except OSError:
            return
        if not fds:
            if not _msg:
                return  # EOF: coordinator is gone
            continue
        for fd in fds:
            try:
                conn = socket.socket(fileno=fd)
            except OSError:
                os.close(fd)
                continue
            server.adopt_connection(conn)


def _worker_main(index: int, config: Dict, fanin_wfd: int,
                 fdpass_fd: Optional[int], close_fds) -> None:
    """Entry point of one worker process.

    Forked children inherit every sibling's pipe ends; ``close_fds``
    lists the ones this worker must drop so that a sibling's death
    actually EOFs its pipe at the coordinator.
    """
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    activate_from_env()

    fanin = os.fdopen(fanin_wfd, "wb")
    fanin_lock = threading.Lock()
    stop = threading.Event()

    def send_fanin(ftype: int, header: Dict, payload: bytes = b"") -> None:
        frame = _pack_fanin(ftype, header, payload)
        with fanin_lock:
            fanin.write(frame)
            fanin.flush()

    def on_seal(epoch: Epoch) -> None:
        header, payload = encode_snapshot(
            index, epoch.index, epoch.service.collectors(), epoch.records)
        send_fanin(FANIN_SNAPSHOT, header, payload)

    reuse_port = bool(config["reuse_port"])
    server = LiveStatsServer(
        host=config["host"],
        port=int(config["port"]) if reuse_port else 0,
        shards=int(config["shards"]),
        queue_depth=int(config["queue_depth"]),
        backpressure=config["backpressure"],
        idle_timeout=config["idle_timeout"],
        window_size=int(config["window_size"]),
        time_slot_ns=int(config["time_slot_ns"]),
        backend=config["backend"],
        rotate_every=None,          # the coordinator drives rotation
        max_epochs=1,               # history lives at the coordinator
        start_enabled=bool(config["start_enabled"]),
        store=None,                 # the coordinator owns the store
        reuse_port=reuse_port,
        direct_port=0 if reuse_port else None,
        on_seal=on_seal,
        cluster_member=True,
        online=False,               # the coordinator analyzes merged epochs
    )
    router = WorkerRouter(index, replicas=int(config["replicas"]))
    server.router = router
    coordinator = (config["control"][0], int(config["control"][1]))
    server.forward_control = (
        lambda payload: _forward_to_coordinator(coordinator, payload))

    def op_rotate(op: Dict) -> Dict:
        fire("live.cluster.worker", crashable=True, worker_index=index,
             point="rotate")
        epoch = server.rotate()
        return {"worker": index, "epoch": epoch.index,
                "records": epoch.records}

    def op_stop(op: Dict) -> Dict:
        stop.set()
        return {"worker": index, "stopping": True}

    def op_route(op: Dict) -> Dict:
        installed = router.update(op["workers"], int(op["generation"]))
        return {"worker": index, "generation": router.generation,
                "installed": installed}

    def op_snapshot(op: Dict) -> Dict:
        return server.snapshot_dict(scope=op.get("scope", "current"),
                                    epoch=op.get("epoch"),
                                    aggregate=bool(op.get("aggregate",
                                                          False)))

    def op_info(op: Dict) -> Dict:
        return server.info()

    def op_enable(op: Dict) -> Dict:
        server._gate.enable(op.get("vm"), op.get("vdisk"))
        return {"worker": index, "enabled": True}

    def op_disable(op: Dict) -> Dict:
        server._gate.disable(op.get("vm"), op.get("vdisk"))
        return {"worker": index, "enabled": False}

    server.control_handlers.update({
        "worker-rotate": op_rotate,
        "worker-stop": op_stop,
        "worker-route": op_route,
        "worker-snapshot": op_snapshot,
        "worker-info": op_info,
        "worker-enable": op_enable,
        "worker-disable": op_disable,
    })

    fd_channel = None
    try:
        server.start()
        address = server.direct_address if reuse_port else server.address
        send_fanin(FANIN_HELLO, {"worker": index, "pid": os.getpid(),
                                 "host": address[0], "port": address[1]})
        fire("live.cluster.worker", crashable=True, worker_index=index,
             point="start")
        if fdpass_fd is not None:
            fd_channel = socket.socket(fileno=fdpass_fd)
            threading.Thread(target=_fd_receive_loop,
                             args=(fd_channel, server),
                             name=f"live-fdpass-{index}",
                             daemon=True).start()
        stop.wait()
    finally:
        try:
            server.close(drain=True)  # final partial epoch → on_seal
        finally:
            if fd_channel is not None:
                try:
                    fd_channel.close()
                except OSError:
                    pass
            try:
                send_fanin(FANIN_BYE, {"worker": index,
                                       "pid": os.getpid()})
                fanin.close()
            except (OSError, ValueError):
                pass


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------
class ClusterServer:
    """N-process ingest edge behind one public address.

    The coordinator is not on the data path: records flow from
    publishers straight into workers; only sealed epoch snapshots and
    control traffic reach this process.  It owns the durable store,
    the merged history and the canonical exposition, and it is the
    only rotation driver — workers never rotate on their own.

    Parameters mirror :class:`~repro.live.server.LiveStatsServer`
    where they mean the same thing; ``workers`` is the process count
    and ``shards`` the shard-thread count *per worker* (the default of
    one thread per process is the multi-core sweet spot — parallelism
    comes from processes here, not threads).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, shards: int = 1,
                 queue_depth: int = 64, backpressure: str = "block",
                 idle_timeout: Optional[float] = 60.0,
                 window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 backend: Optional[str] = None,
                 rotate_every: Optional[float] = None,
                 max_epochs: Optional[int] = None,
                 start_enabled: bool = True,
                 store=None,
                 force_fd_passing: bool = False,
                 ring_replicas: int = DEFAULT_RING_REPLICAS,
                 on_seal=None,
                 online=True):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "cluster mode needs the fork start method (worker "
                "processes inherit pipe and listener descriptors)"
            )
        self.host = host
        self.port = port
        self.workers = workers
        self.fd_passing = (force_fd_passing
                           or not hasattr(socket, "SO_REUSEPORT"))
        self.ring_replicas = ring_replicas
        self.rotate_every = rotate_every
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        self._worker_config = {
            "host": host, "port": 0,  # filled in start()
            "reuse_port": not self.fd_passing,
            "shards": shards, "queue_depth": queue_depth,
            "backpressure": backpressure, "idle_timeout": idle_timeout,
            "window_size": window_size, "time_slot_ns": time_slot_ns,
            "backend": backend, "start_enabled": start_enabled,
            "replicas": ring_replicas, "control": None,
        }

        self._owns_store = False
        if store is not None and not hasattr(store, "append"):
            from ..store import HistogramStore
            store = HistogramStore.open_or_create(store)
            self._owns_store = True
        self.store = store
        self.snapshots = SnapshotLedger(window_size=window_size,
                                        time_slot_ns=time_slot_ns,
                                        max_epochs=max_epochs, store=store)

        #: Called with each sealed merged :class:`Epoch` (rotation and
        #: drain-on-close) — the fleet tier's uplink attach point,
        #: mirroring :class:`LiveStatsServer`'s hook.
        self.on_seal = on_seal

        #: Online fingerprint/drift stage over the *merged* cluster
        #: epochs (workers run with the stage off — a per-worker view
        #: would double-count and misread partial streams).  Same
        #: ``online`` contract as :class:`LiveStatsServer`.
        self.analyzer = None
        self.analysis_errors_total = 0
        if online:
            from ..analysis.online import DriftConfig, OnlineAnalyzer
            if hasattr(online, "observe_epoch"):
                self.analyzer = online
            elif isinstance(online, DriftConfig):
                self.analyzer = OnlineAnalyzer(online)
            else:
                self.analyzer = OnlineAnalyzer()
            if store is not None:
                try:
                    self.analyzer.seed_from_store(store)
                except (OSError, ValueError):
                    pass

        self.control_address: Optional[Tuple[str, int]] = None
        self.worker_deaths = 0
        #: Per-worker wall-clock time of the last fan-in snapshot
        #: (display only) and its monotonic mirror — ages are computed
        #: from the monotonic clock so an NTP step cannot yield
        #: negative or inflated ``worker_snapshot_age`` readings.
        self._last_snapshot_unix: Dict[int, float] = {}
        self._last_snapshot_mono: Dict[int, float] = {}
        self._generation = 0
        self._procs: List = []
        self._worker_addrs: Dict[int, Tuple[str, int]] = {}
        self._alive: set = set()
        self._clean: set = set()
        self._inbox: Dict[int, deque] = {}
        self._inbox_cond = threading.Condition()
        self._reader_threads: List[threading.Thread] = []
        self._route_lock = threading.Lock()
        self._control_lock = threading.Lock()
        self._rotate_timer: Optional[threading.Timer] = None
        self._stopping = threading.Event()
        self._started = False
        self._closed = False
        self._reserve: Optional[socket.socket] = None
        self._control_listener: Optional[socket.socket] = None
        self._control_threads: List[threading.Thread] = []
        self._public_listener: Optional[socket.socket] = None
        self._fdpass_socks: Dict[int, socket.socket] = {}
        self._fdpass_rr = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterServer":
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True

        self._start_control_server()
        self._worker_config["control"] = list(self.control_address)

        if self.fd_passing:
            # Single listener: the coordinator accepts and deals the
            # connected sockets to workers over SCM_RIGHTS.
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(64)
            self._public_listener = listener
            self.port = listener.getsockname()[1]
        else:
            # SO_REUSEPORT group: reserve the port number (bound, never
            # listening — a closed-state socket takes no connections)
            # so an ephemeral choice is pinned before any worker binds.
            reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            reserve.bind((self.host, self.port))
            self._reserve = reserve
            self.port = reserve.getsockname()[1]
        self._worker_config["port"] = self.port

        ctx = multiprocessing.get_context("fork")
        pipes = [os.pipe() for _ in range(self.workers)]
        channels = ([socket.socketpair() for _ in range(self.workers)]
                    if self.fd_passing else None)
        for index in range(self.workers):
            self._inbox[index] = deque()
            self._alive.add(index)
        for index in range(self.workers):
            rfd, wfd = pipes[index]
            close_fds = [r for r, _ in pipes]
            close_fds += [w for j, (_, w) in enumerate(pipes) if j != index]
            child_fd = None
            if channels is not None:
                child_fd = channels[index][1].fileno()
                close_fds += [pair[0].fileno() for pair in channels]
                close_fds += [pair[1].fileno()
                              for j, pair in enumerate(channels)
                              if j != index]
            proc = ctx.Process(
                target=_worker_main,
                args=(index, dict(self._worker_config), wfd, child_fd,
                      close_fds),
                name=f"live-cluster-w{index}", daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        for index, (rfd, wfd) in enumerate(pipes):
            os.close(wfd)  # the worker holds the only write end now
            rfile = os.fdopen(rfd, "rb")
            thread = threading.Thread(target=self._fanin_reader,
                                      args=(index, rfile),
                                      name=f"live-fanin-{index}",
                                      daemon=True)
            thread.start()
            self._reader_threads.append(thread)
        if channels is not None:
            for index, (parent, child) in enumerate(channels):
                child.close()
                self._fdpass_socks[index] = parent

        self._await_hellos()
        if self._reserve is not None:
            self._reserve.close()
            self._reserve = None
        self._rebuild_routes()
        if self.fd_passing:
            threading.Thread(target=self._fdpass_accept_loop,
                             name="live-cluster-accept",
                             daemon=True).start()
        if self.rotate_every:
            self._schedule_rotate()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The shared public ingest ``(host, port)``."""
        return (self.host, self.port)

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    def _await_hellos(self) -> None:
        """Wait for every worker to announce (or die trying).

        A worker crashing during startup — the ``live.cluster.worker``
        fault site fires right after HELLO — is survivable: the ring
        simply starts without it.  Only a full wipe-out fails start.
        """
        deadline = _now() + _HELLO_TIMEOUT
        stragglers: List[int] = []
        with self._inbox_cond:
            while True:
                pending = [i for i in range(self.workers)
                           if i not in self._worker_addrs
                           and i in self._alive]
                if not pending:
                    break
                remaining = deadline - _now()
                if remaining <= 0:
                    stragglers = pending
                    break
                self._inbox_cond.wait(timeout=min(remaining, 0.5))
            announced = bool(self._alive & set(self._worker_addrs))
        if stragglers:
            self.close(drain=False)
            raise RuntimeError(
                f"workers {stragglers} never announced within "
                f"{_HELLO_TIMEOUT}s")
        if not announced:
            self.close(drain=False)
            raise RuntimeError("every cluster worker died on startup")

    def close(self, drain: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        while True:
            timer = self._rotate_timer
            if timer is None:
                break
            timer.cancel()
            if timer is not threading.current_thread():
                timer.join(timeout=10.0)
            if self._rotate_timer is timer:
                break
        if self._public_listener is not None:
            try:
                socket.create_connection(self.address, timeout=1.0).close()
            except OSError:
                pass
            try:
                self._public_listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._control_lock:
            with self._inbox_cond:
                targets = [(i, self._worker_addrs[i])
                           for i in sorted(self._alive)
                           if i in self._worker_addrs]
            for _index, addr in targets:
                try:
                    self._rpc(addr, {"op": "worker-stop"}, timeout=10.0)
                except (OSError, ValueError, LiveError, ProtocolError):
                    pass  # already dead, or died while answering
            for proc in self._procs:
                proc.join(timeout=15.0)
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)
            for thread in self._reader_threads:
                thread.join(timeout=5.0)
            if drain:
                # Workers drain on close and forward their final
                # partial epochs; seal whatever arrived as the
                # cluster's own final epoch.
                with self._inbox_cond:
                    leftovers = []
                    for queue in self._inbox.values():
                        while queue:
                            leftovers.append(queue.popleft())
                if leftovers:
                    self._fire_on_seal(self.snapshots.seal_round(leftovers))
            for sock in self._fdpass_socks.values():
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
            if self._reserve is not None:
                try:
                    self._reserve.close()
                except OSError:  # pragma: no cover
                    pass
                self._reserve = None
            self._stop_control_server()
            if self.store is not None and self._owns_store:
                try:
                    self.store.checkpoint()
                except (OSError, ValueError) as exc:
                    self.snapshots.ledger.note_store_failure(
                        f"checkpoint on close: {exc}")
                try:
                    self.store.close()
                except (OSError, ValueError) as exc:
                    self.snapshots.ledger.note_store_failure(
                        f"store close: {exc}")

    def _schedule_rotate(self) -> None:
        if self._stopping.is_set():
            return
        timer = threading.Timer(self.rotate_every, self._timed_rotate)
        timer.daemon = True
        self._rotate_timer = timer
        timer.start()

    def _timed_rotate(self) -> None:
        if self._stopping.is_set():
            return
        try:
            self.rotate()
        except ValueError:
            return
        finally:
            self._schedule_rotate()

    # ------------------------------------------------------------------
    # Fan-in / worker liveness
    # ------------------------------------------------------------------
    def _fanin_reader(self, index: int, rfile) -> None:
        try:
            while True:
                frame = _read_fanin(rfile)
                if frame is None:
                    break
                ftype, header, payload = frame
                if ftype == FANIN_HELLO:
                    with self._inbox_cond:
                        self._worker_addrs[index] = (header["host"],
                                                     int(header["port"]))
                        self._inbox_cond.notify_all()
                elif ftype == FANIN_SNAPSHOT:
                    with self._inbox_cond:
                        self._inbox[index].append(
                            (header, bytes(payload)))
                        self._last_snapshot_unix[index] = time.time()
                        self._last_snapshot_mono[index] = time.monotonic()
                        self._inbox_cond.notify_all()
                elif ftype == FANIN_BYE:
                    with self._inbox_cond:
                        self._clean.add(index)
        except (OSError, ValueError):
            pass  # torn frame: the worker died mid-write
        finally:
            try:
                rfile.close()
            except OSError:  # pragma: no cover
                pass
            self._worker_gone(index)

    def _worker_gone(self, index: int) -> None:
        with self._inbox_cond:
            if index not in self._alive:
                return
            self._alive.discard(index)
            crashed = index not in self._clean
            self._inbox_cond.notify_all()
        if crashed and not self._stopping.is_set():
            self.worker_deaths += 1
            self._rebuild_routes()

    def _rebuild_routes(self) -> None:
        """Recompute the ring over the survivors and broadcast it."""
        with self._route_lock:
            self._generation += 1
            generation = self._generation
            with self._inbox_cond:
                table = [[i, *self._worker_addrs[i]]
                         for i in sorted(self._alive)
                         if i in self._worker_addrs]
        op = {"op": "worker-route", "workers": table,
              "generation": generation}
        for index, host, port in table:
            try:
                self._rpc((host, port), op, timeout=10.0)
            except (OSError, ValueError, LiveError, ProtocolError):
                pass  # its reader thread will notice the death

    # ------------------------------------------------------------------
    # Worker RPC
    # ------------------------------------------------------------------
    @staticmethod
    def _rpc(address: Tuple[str, int], op: Dict,
             timeout: float = _RPC_TIMEOUT) -> Dict:
        with socket.create_connection(address, timeout=timeout) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(pack_control(op))
            rfile = sock.makefile("rb")
            frame = read_frame(rfile)
        if frame is None:
            raise ValueError(f"worker at {address} closed mid-command")
        ftype, payload = frame
        if ftype == FRAME_ERROR:
            document = json.loads(payload.decode("utf-8"))
            raise LiveError(document.get("error", "worker error"))
        if ftype != FRAME_OK:
            raise ValueError(f"unexpected worker frame 0x{ftype:02x}")
        return json.loads(payload.decode("utf-8"))

    def _alive_targets(self) -> List[Tuple[int, Tuple[str, int]]]:
        with self._inbox_cond:
            return [(i, self._worker_addrs[i])
                    for i in sorted(self._alive)
                    if i in self._worker_addrs]

    def _broadcast(self, op: Dict) -> Dict[int, Dict]:
        results: Dict[int, Dict] = {}
        for index, addr in self._alive_targets():
            try:
                results[index] = self._rpc(addr, op)
            except (OSError, ValueError, LiveError, ProtocolError):
                pass  # dead worker: liveness handled by its reader
        return results

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------
    def rotate(self) -> Epoch:
        """Rotate every worker and seal one merged cluster epoch.

        Each alive worker seals locally and pushes its snapshot down
        the fan-in; this collects exactly one snapshot per worker that
        survived the round and merges them vectorized.  A worker that
        dies mid-round contributes nothing — its acked-but-unsealed
        records are lost with it (the documented crash contract).
        """
        with self._control_lock:
            if self._closed:
                raise ValueError("cluster is closed")
            targets = self._alive_targets()
            for _index, addr in targets:
                try:
                    self._rpc(addr, {"op": "worker-rotate"})
                except (OSError, ValueError, LiveError, ProtocolError):
                    pass  # died before sealing; handled below
            snapshots = self._collect_round([i for i, _ in targets])
            epoch = self.snapshots.seal_round(snapshots)
            self._fire_on_seal(epoch)
            return epoch

    def _fire_on_seal(self, epoch: Epoch) -> None:
        """Invoke the seal side effects; neither may break rotation
        (mirrors :class:`LiveStatsServer`)."""
        if self.analyzer is not None:
            try:
                self.analyzer.observe_epoch(epoch)
            except (OSError, ValueError):
                self.analysis_errors_total += 1
        if self.on_seal is None:
            return
        try:
            self.on_seal(epoch)
        except (OSError, ValueError):
            pass

    def _collect_round(self, indices) -> List[Tuple[Dict, bytes]]:
        deadline = _now() + _ROUND_TIMEOUT
        collected: List[Tuple[Dict, bytes]] = []
        pending = set(indices)
        with self._inbox_cond:
            while pending:
                for index in sorted(pending):
                    if self._inbox[index]:
                        collected.append(self._inbox[index].popleft())
                        pending.discard(index)
                    elif index not in self._alive:
                        pending.discard(index)  # died without a snapshot
                if not pending:
                    break
                remaining = deadline - _now()
                if remaining <= 0:
                    break  # stragglers: their snapshot joins the next round
                self._inbox_cond.wait(timeout=min(remaining, 0.5))
        return collected

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _current_service(self) -> HistogramService:
        """Merge of every alive worker's live (unsealed) epoch."""
        service = HistogramService(window_size=self.window_size,
                                   time_slot_ns=self.time_slot_ns)
        snapshots = self._broadcast({"op": "worker-snapshot",
                                     "scope": "current"})
        for _index, snapshot in sorted(snapshots.items()):
            for disk, document in snapshot["disks"].items():
                vm, _, vdisk = disk.partition("/")
                service.adopt((vm, vdisk),
                              VscsiStatsCollector.from_dict(document))
        return service

    def merged_service(self) -> HistogramService:
        """Lifetime merge: sealed history plus every worker's live
        epoch — the cluster analogue of
        :meth:`LiveStatsServer.merged_service`."""
        service = self.snapshots.merged_history()
        current = self._current_service()
        for key, collector in current.collectors():
            service.adopt(key, collector)
        return service

    def snapshot_dict(self, scope: str = "all",
                      epoch: Optional[int] = None,
                      aggregate: bool = False) -> Dict:
        """JSON-ready snapshot document, same shape as the
        single-process server's."""
        ledger = self.snapshots.ledger
        if scope == "epoch":
            if not len(ledger) and epoch is None:
                raise ProtocolError("no sealed epochs yet")
            if epoch is None:
                target = ledger.last
            else:
                try:
                    target = ledger.epoch(epoch)
                except KeyError as exc:
                    raise ProtocolError(str(exc)) from None
            service = target.service
            meta: Dict = {"scope": "epoch", "epoch": target.index,
                          "records": target.records}
        elif scope == "current":
            service = self._current_service()
            meta = {"scope": "current", "epoch": len(ledger)}
        elif scope == "all":
            service = self.merged_service()
            meta = {"scope": "all", "epochs": len(ledger)}
        else:
            raise ProtocolError(f"unknown snapshot scope {scope!r}")
        meta["disks"] = {
            f"{vm}/{vdisk}": collector.to_dict()
            for (vm, vdisk), collector in service.collectors()
        }
        if aggregate:
            meta["aggregate"] = service.aggregate().to_dict()
        return meta

    def openmetrics(self) -> str:
        """Canonical exposition: the lifetime merge plus summed worker
        counters and cluster liveness gauges."""
        service = self.merged_service()
        infos = self._broadcast({"op": "worker-info"})
        ledger = self.snapshots.ledger

        def total(field: str) -> int:
            return sum(info.get(field, 0) for info in infos.values())

        daemon = {
            "epochs_sealed_total": len(ledger),
            "ingest_frames_total": total("frames_total"),
            "ingest_records_total": total("records_total"),
            "ignored_records_total": total("ignored_records_total"),
            "dropped_records_total": total("dropped_records_total"),
            "rejected_frames_total": total("rejected_frames_total"),
            "duplicate_frames_total": total("duplicate_frames_total"),
            "redirected_frames_total": total("redirected_frames_total"),
            "persist_failures_total": len(ledger.persist_errors),
            "degraded": 1 if ledger.degraded else 0,
            "connections_open": total("connections_open"),
            "connections_total": total("connections_total"),
            "cluster_workers": self.workers,
            "cluster_workers_alive": len(infos),
            "cluster_worker_deaths_total": self.worker_deaths,
            "cluster_route_generation": self._generation,
        }
        verdicts = None
        if self.analyzer is not None:
            daemon["analysis_epochs_total"] = self.analyzer.epochs_seen
            daemon["analysis_errors_total"] = self.analysis_errors_total
            verdicts = self.analyzer.verdicts()
        return render_openmetrics(service.collectors(), daemon,
                                  verdicts=verdicts)

    def verdicts_dict(self) -> Dict:
        """Rolling online-analysis state (the ``verdicts`` control
        op), over the merged cluster epochs."""
        if self.analyzer is None:
            return {"online": False}
        document = self.analyzer.to_dict()
        document["online"] = True
        document["analysis_errors_total"] = self.analysis_errors_total
        return document

    def route_info(self) -> Dict:
        with self._route_lock:
            generation = self._generation
        with self._inbox_cond:
            table = [[i, *self._worker_addrs[i]]
                     for i in sorted(self._alive)
                     if i in self._worker_addrs]
        return {"generation": generation, "replicas": self.ring_replicas,
                "workers": table}

    def info(self) -> Dict:
        ledger = self.snapshots.ledger
        workers = self._broadcast({"op": "worker-info"})
        now = time.monotonic()
        with self._inbox_cond:
            last_snapshot = dict(self._last_snapshot_mono)
        info = {
            "cluster": True,
            "address": list(self.address),
            "control_address": list(self.control_address),
            "fd_passing": self.fd_passing,
            "workers": self.workers,
            "workers_alive": sorted(
                int(i) for i in workers),
            "worker_deaths_total": self.worker_deaths,
            # Per-worker health without a second probe: open ingest
            # sessions (from the worker's own info doc) and seconds
            # since its last fan-in snapshot (None before the first
            # rotation) — what a fleet tier polls to judge a host.
            "worker_sessions": {str(i): doc.get("sessions", 0)
                                for i, doc in workers.items()},
            "worker_snapshot_age": {
                str(i): (max(0.0, now - last_snapshot[i])
                         if i in last_snapshot else None)
                for i in workers
            },
            "route_generation": self._generation,
            "epochs_sealed": len(ledger),
            "epoch_records": ledger.records,
            "degraded": ledger.degraded,
            "online": (
                None if self.analyzer is None else {
                    "epochs_seen": self.analyzer.epochs_seen,
                    "verdicts_total": self.analyzer.verdicts_total,
                    "drift_events_total":
                        self.analyzer.drift_events_total,
                    "analysis_errors_total": self.analysis_errors_total,
                }
            ),
            "persist_errors": list(ledger.persist_errors),
            "worker_info": {str(i): doc for i, doc in workers.items()},
        }
        info["ledger"] = ledger.to_dict()
        info["ledger"].pop("retained", None)
        if self.store is not None:
            entry = {"path": str(self.store.path),
                     "owned": self._owns_store,
                     "closed": self.store.closed}
            if not self.store.closed:
                entry["records"] = len(self.store)
                entry["epochs"] = self.store.epochs
            info["store"] = entry
        return info

    def export_json(self) -> str:
        return json.dumps(self.snapshot_dict(scope="all"), indent=2,
                          sort_keys=True)

    def enable(self, vm: Optional[str] = None,
               vdisk: Optional[str] = None) -> None:
        self._broadcast({"op": "worker-enable", "vm": vm, "vdisk": vdisk})

    def disable(self, vm: Optional[str] = None,
                vdisk: Optional[str] = None) -> None:
        self._broadcast({"op": "worker-disable", "vm": vm, "vdisk": vdisk})

    # ------------------------------------------------------------------
    # Control endpoint (the address `repro serve --workers` publishes
    # for rotate/metrics/snapshot; workers relay public ops here)
    # ------------------------------------------------------------------
    def _start_control_server(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(16)
        self._control_listener = listener
        self.control_address = (self.host, listener.getsockname()[1])
        thread = threading.Thread(target=self._control_accept_loop,
                                  name="live-cluster-control",
                                  daemon=True)
        thread.start()
        self._control_threads.append(thread)

    def _stop_control_server(self) -> None:
        if self._control_listener is None:
            return
        try:
            socket.create_connection(self.control_address,
                                     timeout=1.0).close()
        except OSError:
            pass
        try:
            self._control_listener.close()
        except OSError:  # pragma: no cover
            pass
        for thread in self._control_threads:
            thread.join(timeout=5.0)

    def _control_accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._control_listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve_control, args=(conn,),
                             name="live-cluster-ctl-conn",
                             daemon=True).start()

    def _serve_control(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(60.0)
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            while not self._stopping.is_set():
                try:
                    frame = read_frame(rfile)
                except ProtocolError as exc:
                    wfile.write(pack_error(str(exc)))
                    wfile.flush()
                    return
                except (socket.timeout, TimeoutError):
                    return
                if frame is None:
                    return
                ftype, payload = frame
                try:
                    if ftype != FRAME_CONTROL:
                        raise ProtocolError(
                            "the coordinator does not ingest data "
                            "frames; publish to the shared ingest port")
                    response = self._handle_control_op(
                        unpack_control(payload))
                except ProtocolError as exc:
                    response = pack_error(str(exc))
                except ValueError as exc:
                    response = pack_error(str(exc))
                wfile.write(response)
                wfile.flush()
        except (OSError, ValueError):
            return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _handle_control_op(self, op: Dict) -> bytes:
        name = op["op"]
        if name == "ping":
            return pack_ok({"pong": True, "version": 1, "cluster": True,
                            "workers": self.workers,
                            "workers_alive": len(self._alive)})
        if name == "rotate":
            epoch = self.rotate()
            return pack_ok({"epoch": epoch.index,
                            "records": epoch.records,
                            "disks": len(list(
                                epoch.service.collectors()))})
        if name == "snapshot":
            return pack_ok(self.snapshot_dict(
                scope=op.get("scope", "all"),
                epoch=op.get("epoch"),
                aggregate=bool(op.get("aggregate", False))))
        if name == "metrics":
            return pack_text(self.openmetrics())
        if name == "info":
            return pack_ok(self.info())
        if name == "route":
            return pack_ok(self.route_info())
        if name == "enable":
            self.enable(op.get("vm"), op.get("vdisk"))
            return pack_ok({"enabled": True})
        if name == "disable":
            self.disable(op.get("vm"), op.get("vdisk"))
            return pack_ok({"enabled": False})
        if name == "verdicts":
            return pack_ok(self.verdicts_dict())
        raise ProtocolError(f"unknown control op {name!r}")

    # ------------------------------------------------------------------
    # fd-passing fallback data path
    # ------------------------------------------------------------------
    def _fdpass_accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._public_listener.accept()
            except OSError:
                return
            targets = sorted(self._fdpass_socks.keys() & self._alive)
            sent = False
            if targets:
                index = targets[self._fdpass_rr % len(targets)]
                self._fdpass_rr += 1
                try:
                    socket.send_fds(self._fdpass_socks[index], [b"c"],
                                    [conn.fileno()])
                    sent = True
                except OSError:
                    pass
            # SCM_RIGHTS dup'd the descriptor into the worker; this
            # process's copy is closed either way.
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            if not sent:
                continue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "running" if self._started else "new")
        return (f"<ClusterServer {state} {self.host}:{self.port} "
                f"workers={len(self._alive)}/{self.workers}>")
