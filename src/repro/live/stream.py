"""Per-disk streaming ingest state for the live daemon.

A :class:`DiskStream` turns an *unbounded, chunked* command stream into
exactly the collector state that a one-shot offline replay
(:func:`repro.core.tracing.replay_into_collector` with ``batch=True``)
of the whole stream would produce.  Two pieces of state make that
exact:

* **Outstanding recovery.**  Offline replay computes the in-flight
  count at each issue as ``i - bisect_left(sorted_completion_times,
  issue_time)`` over the *whole* trace.  Streaming, a record ``j`` can
  only satisfy ``complete_j < issue_i`` if ``issue_j <= complete_j <
  issue_i`` — i.e. ``j`` precedes ``i`` in issue order, so it has
  already arrived.  The stream therefore carries the lifetime issue
  count, a count of completions permanently below the issue watermark,
  and the small sorted set of completion times still at or above it;
  each batch is one vectorized ``searchsorted`` against that set.

* **Epoch continuation.**  :meth:`seal` hands the current collector to
  the epoch ledger and remembers it as a *seed*; the next batch lazily
  creates a fresh collector via
  :meth:`~repro.core.collector.VscsiStatsCollector.fresh_continuation`,
  which inherits the previous end block, last arrival time and
  look-behind ring.  The values inserted across all epochs are then
  exactly the single-run values, and since every exported statistic is
  additive, merging the epoch snapshots is byte-identical to never
  having rotated.  (The outstanding-recovery state lives here, outside
  the collector, so it survives rotation for the same reason.)

Frames for one disk must arrive in non-decreasing ``(issue, serial)``
order across frames (within a frame the stream sorts for you); an
out-of-order frame raises :class:`~repro.live.protocol.ProtocolError`
and is dropped whole, leaving prior state untouched.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import merge as _heap_merge
from typing import List, Optional, Tuple

from ..core.collector import DEFAULT_TIME_SLOT_NS, VscsiStatsCollector
from ..core.window import DEFAULT_WINDOW_SIZE
from ..parallel.trace_io import TraceColumns
from .protocol import ProtocolError, sort_columns_for_stream

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the pure path
    _np = None

__all__ = ["DiskStream"]


class DiskStream:
    """Streaming characterization state for one ``(vm, vdisk)`` pair."""

    __slots__ = (
        "window_size", "time_slot_ns", "backend", "collector",
        "records", "rejected_batches", "dropped_records",
        "_seed", "_issued", "_done_below", "_pending", "_watermark",
    )

    def __init__(self, window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 backend: Optional[str] = None):
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        self.backend = backend
        #: Live collector for the current epoch (lazily created).
        self.collector: Optional[VscsiStatsCollector] = None
        #: Lifetime records ingested (across every epoch).
        self.records = 0
        #: Batches rejected for protocol violations (out-of-order).
        self.rejected_batches = 0
        #: Records dropped by backpressure (counted by the owner).
        self.dropped_records = 0
        self._seed: Optional[VscsiStatsCollector] = None
        self._issued = 0          # lifetime issues ingested
        self._done_below = 0      # completions permanently < watermark
        self._pending: List[int] = []  # sorted completes >= watermark
        self._watermark: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    def _ensure_collector(self) -> VscsiStatsCollector:
        if self.collector is None:
            if self._seed is not None:
                self.collector = self._seed.fresh_continuation()
            else:
                self.collector = VscsiStatsCollector(
                    window_size=self.window_size,
                    time_slot_ns=self.time_slot_ns,
                )
        return self.collector

    def ingest(self, columns: TraceColumns) -> int:
        """Apply one batch of completed commands; returns the count.

        The batch is sorted internally by ``(issue, serial)``; its
        first command must not precede the stream watermark.  On a
        violation the whole batch is rejected (no partial state).
        """
        n = len(columns)
        if not n:
            return 0
        ordered = sort_columns_for_stream(columns)
        first = (int(ordered.issue_ns[0]), int(ordered.serial[0]))
        if self._watermark is not None and first < self._watermark:
            self.rejected_batches += 1
            raise ProtocolError(
                f"out-of-order batch: first command (issue={first[0]}, "
                f"serial={first[1]}) precedes the stream watermark "
                f"(issue={self._watermark[0]}, serial={self._watermark[1]})"
            )
        backend = self.backend
        if _np is not None and isinstance(ordered.issue_ns, _np.ndarray):
            outstanding, last_issue = self._outstanding_numpy(ordered)
            if backend is None:
                backend = "numpy"
        else:
            outstanding, last_issue = self._outstanding_pure(ordered)

        collector = self._ensure_collector()
        collector.on_issue_batch(
            ordered.issue_ns, ordered.is_read, ordered.lba,
            ordered.nblocks, outstanding, backend=backend,
        )
        # Completion order never affects the snapshot (latency bins and
        # time slots are additive), so completions go in batch order.
        if _np is not None and isinstance(ordered.complete_ns, _np.ndarray):
            latencies = ordered.complete_ns - ordered.issue_ns
        else:
            latencies = [c - i for c, i in zip(ordered.complete_ns,
                                               ordered.issue_ns)]
        collector.on_complete_batch(
            ordered.complete_ns, ordered.is_read, latencies,
            backend=backend,
        )

        self._issued += n
        self.records += n
        self._watermark = (last_issue, int(ordered.serial[-1]))
        return n

    def _outstanding_numpy(self, ordered: TraceColumns):
        issue = _np.asarray(ordered.issue_ns, dtype=_np.int64)
        complete = _np.sort(_np.asarray(ordered.complete_ns,
                                        dtype=_np.int64))
        pending = _np.asarray(self._pending, dtype=_np.int64)
        candidates = _np.concatenate([pending, complete])
        candidates.sort(kind="stable")
        below = _np.searchsorted(candidates, issue, side="left")
        outstanding = (
            self._issued + _np.arange(len(issue), dtype=_np.int64)
            - (self._done_below + below)
        )
        last_issue = int(issue[-1])
        drop = int(_np.searchsorted(candidates, last_issue, side="left"))
        self._done_below += drop
        self._pending = candidates[drop:].tolist()
        return outstanding, last_issue

    def _outstanding_pure(self, ordered: TraceColumns):
        issue = list(ordered.issue_ns)
        candidates = list(_heap_merge(self._pending,
                                      sorted(ordered.complete_ns)))
        issued = self._issued
        done = self._done_below
        outstanding = [
            issued + i - done - bisect_left(candidates, t)
            for i, t in enumerate(issue)
        ]
        last_issue = int(issue[-1])
        drop = bisect_left(candidates, last_issue)
        self._done_below += drop
        self._pending = candidates[drop:]
        return outstanding, last_issue

    # ------------------------------------------------------------------
    def seal(self) -> Optional[VscsiStatsCollector]:
        """Close the current epoch for this disk.

        Returns the epoch's collector (``None`` if the disk saw no
        commands this epoch) and arms lazy creation of the next
        epoch's continuation collector.  The outstanding-recovery
        state is stream-lifetime and is *not* reset.
        """
        collector = self.collector
        if collector is not None:
            self._seed = collector
            self.collector = None
        return collector

    @property
    def epoch_records(self) -> int:
        """Records ingested in the current (unsealed) epoch."""
        return self.collector.commands if self.collector is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DiskStream records={self.records} "
                f"pending_completes={len(self._pending)}>")
