"""Client for the live characterization daemon.

:class:`LiveStatsClient` wraps one TCP connection in the frame protocol
of :mod:`repro.live.protocol`.  Publishing chunks a command stream into
sequenced ``DATA_SEQ`` frames (each a raw run of 40-byte ``VSCSITR1``
records) and waits for the per-frame ack, which doubles as flow control
against the server's bounded shard queues.  Control methods
(:meth:`rotate`, :meth:`snapshot`, :meth:`enable`, :meth:`disable`,
:meth:`metrics`, :meth:`info`) mirror the daemon's control plane one to
one.

Resilience
----------
A failed round-trip (``OSError``, reset, truncated response) *always*
closes and discards the socket — a connection that may hold a
half-written request or half-read response is never reused; the next
call reconnects.

Data frames additionally retry with bounded exponential backoff.  Each
frame carries the client's session id and a monotone sequence number;
the server remembers the last ``(session, seq)`` it processed and the
exact ack bytes it produced, so a retry of a frame whose ack was lost
in transit is answered from that cache instead of being ingested twice.
The result: under connection faults, every acknowledged record is
counted exactly once and the merged histograms are byte-identical to a
fault-free run (pinned by ``tests/test_faults.py``).

Control operations are *not* retried — ``rotate`` is not idempotent —
so a transport failure there surfaces to the caller, who knows whether
repeating the op is safe.

A server-side error arrives as an ``ERROR`` frame and is raised as
:class:`LiveError`; the connection stays usable unless the transport
itself failed.  A mid-publish failure attaches the totals accumulated
so far as ``LiveError.partial``.
"""

from __future__ import annotations

import json
import socket
import time
import uuid
from typing import Dict, Iterable, Optional

from ..core.tracing import TraceRecord
from ..faults import fire
from ..parallel.trace_io import TraceColumns, records_to_columns
from .protocol import (
    FRAME_ERROR,
    FRAME_OK,
    FRAME_TEXT,
    RECORD_BYTES,
    ProtocolError,
    columns_to_bytes,
    pack_control,
    pack_data_seq,
    read_frame,
    sort_columns_for_stream,
)

__all__ = [
    "DEFAULT_FRAME_RECORDS",
    "DEFAULT_RETRIES",
    "LiveConnectionError",
    "LiveError",
    "LiveStatsClient",
]

#: Default records per data frame — big enough to amortize the ack
#: round-trip and land in the numpy batch kernels, small enough to
#: bound per-frame latency and memory.
DEFAULT_FRAME_RECORDS = 32_768

#: Default data-frame retry budget (attempts beyond the first).
DEFAULT_RETRIES = 4

#: First backoff sleep; doubles per retry up to the cap.
DEFAULT_RETRY_BACKOFF = 0.05
DEFAULT_RETRY_BACKOFF_CAP = 2.0


class LiveError(RuntimeError):
    """An ``ERROR`` response from the daemon, or a failed publish.

    ``partial`` (when set) carries the ``{"records", "frames",
    "accepted", "dropped", "ignored", "retried"}`` totals accumulated
    before a mid-stream failure, so a publisher can resume from the
    first unacknowledged frame instead of restarting blind.
    """

    def __init__(self, message: str, partial: Optional[Dict] = None):
        super().__init__(message)
        self.partial = partial


class LiveConnectionError(LiveError, ConnectionError):
    """The transport died before a response arrived.

    Both a :class:`LiveError` (it ends a live operation) and a
    :class:`ConnectionError` (it is retried like one): the data plane's
    retry loop catches it as ``OSError``.
    """


class LiveStatsClient:
    """One connection to a :class:`~repro.live.server.LiveStatsServer`.

    ``retries``/``retry_backoff``/``retry_backoff_cap`` bound the
    data-plane retry loop: up to ``retries`` resends per frame,
    sleeping ``retry_backoff * 2**attempt`` (capped) between attempts.
    ``retries=0`` disables retry entirely.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 30.0,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 retry_backoff_cap: float = DEFAULT_RETRY_BACKOFF_CAP):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        #: Lifetime count of data-frame resends (for tests/telemetry).
        self.retries_total = 0
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        # Retry identity: one session per client object, a monotone
        # frame counter across every publish on it.  The session id
        # survives reconnects — that is the point.
        self._session = uuid.uuid4().hex
        self._seq = 0

    # ------------------------------------------------------------------
    def connect(self) -> "LiveStatsClient":
        """Open the connection (idempotent)."""
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._rfile = sock.makefile("rb")
            self._wfile = sock.makefile("wb")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._rfile = None
                self._wfile = None

    def __enter__(self) -> "LiveStatsClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes):
        self.connect()
        try:
            action = fire("live.client.send")
            if action is not None and action.kind == "partial":
                # Injected short write: emit a truncated frame, then
                # fail the way a dying TCP connection would.
                cut = max(1, int(len(frame) * action.fraction))
                self._wfile.write(frame[:cut])
                self._wfile.flush()
                raise ConnectionResetError("injected short frame write")
            self._wfile.write(frame)
            self._wfile.flush()
            fire("live.client.recv")
            response = read_frame(self._rfile)
        except (OSError, ValueError):
            # The transport failed mid-round-trip.  The connection may
            # hold a half-written request or half-read response, so it
            # must never be reused — discard it; the next call
            # reconnects.
            self.close()
            raise
        if response is None:
            self.close()
            raise LiveConnectionError("connection closed by server")
        ftype, payload = response
        if ftype == FRAME_ERROR:
            try:
                message = json.loads(payload.decode("utf-8"))["error"]
            except Exception:  # pragma: no cover - defensive
                message = payload.decode("utf-8", "replace")
            raise LiveError(message)
        if ftype == FRAME_OK:
            return json.loads(payload.decode("utf-8"))
        if ftype == FRAME_TEXT:
            return payload.decode("utf-8")
        raise ProtocolError(f"unexpected response type 0x{ftype:02x}")

    def _data_roundtrip(self, frame: bytes):
        """Round-trip one sequenced data frame with bounded retry.

        Retries transport failures only (``OSError`` including
        :class:`LiveConnectionError`, and :class:`ProtocolError` from
        a response truncated by a dying connection); a semantic
        ``ERROR`` response raises immediately.  Safe because the frame
        carries ``(session, seq)``: the server answers a retry of an
        already-processed frame from its ack cache.
        """
        delay = self.retry_backoff
        attempt = 0
        while True:
            try:
                return self._roundtrip(frame)
            except (ProtocolError, OSError):
                attempt += 1
                if attempt > self.retries:
                    raise
                self.retries_total += 1
                if delay > 0:
                    time.sleep(min(delay, self.retry_backoff_cap))
                delay *= 2

    def _control(self, op: str, **fields) -> Dict:
        body = {"op": op}
        body.update({k: v for k, v in fields.items() if v is not None})
        return self._roundtrip(pack_control(body))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def publish_columns(self, vm: str, vdisk: str, columns: TraceColumns,
                        frame_records: int = DEFAULT_FRAME_RECORDS,
                        sort: bool = True) -> Dict:
        """Stream columns to the daemon as chunked data frames.

        ``sort=True`` (default) orders the whole stream by ``(issue,
        serial)`` first — required unless the caller guarantees stream
        order.  Returns ``{"records", "frames", "accepted", "dropped",
        "ignored", "retried"}`` totals.  Empty input returns
        zero totals without touching the wire.  On failure the raised
        :class:`LiveError` carries the totals accumulated so far as
        ``.partial``.
        """
        if frame_records < 1:
            raise ValueError(
                f"frame_records must be >= 1, got {frame_records}"
            )
        if sort:
            columns = sort_columns_for_stream(columns)
        body = columns_to_bytes(columns)
        total = {"records": len(columns), "frames": 0, "accepted": 0,
                 "dropped": 0, "ignored": 0, "retried": 0}
        if not body:
            return total
        step = frame_records * RECORD_BYTES
        start_retries = self.retries_total
        try:
            for offset in range(0, len(body), step):
                chunk = body[offset:offset + step]
                self._seq += 1
                ack = self._data_roundtrip(
                    pack_data_seq(self._session, self._seq, vm, vdisk, chunk)
                )
                total["frames"] += 1
                total["accepted"] += ack.get("accepted", 0)
                total["dropped"] += ack.get("dropped", 0)
                total["ignored"] += ack.get("ignored", 0)
                total["retried"] = self.retries_total - start_retries
        except LiveError as exc:
            total["retried"] = self.retries_total - start_retries
            exc.partial = dict(total)
            raise
        except (ProtocolError, OSError) as exc:
            total["retried"] = self.retries_total - start_retries
            raise LiveError(
                f"publish failed after {total['frames']} acked frames: "
                f"{exc}", partial=dict(total)
            ) from exc
        total["retried"] = self.retries_total - start_retries
        return total

    def publish_records(self, vm: str, vdisk: str,
                        records: Iterable[TraceRecord],
                        frame_records: int = DEFAULT_FRAME_RECORDS) -> Dict:
        """Stream trace records (sorted into stream order first)."""
        return self.publish_columns(vm, vdisk, records_to_columns(records),
                                    frame_records=frame_records)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def ping(self) -> Dict:
        return self._control("ping")

    def rotate(self) -> Dict:
        """Seal the current epoch; returns ``{"epoch", "records", ...}``."""
        return self._control("rotate")

    def snapshot(self, scope: str = "all", epoch: Optional[int] = None,
                 aggregate: bool = False) -> Dict:
        """Fetch a snapshot document (see the server's op table)."""
        return self._control("snapshot", scope=scope, epoch=epoch,
                             aggregate=aggregate or None)

    def enable(self, vm: Optional[str] = None,
               vdisk: Optional[str] = None) -> Dict:
        return self._control("enable", vm=vm, vdisk=vdisk)

    def disable(self, vm: Optional[str] = None,
                vdisk: Optional[str] = None) -> Dict:
        return self._control("disable", vm=vm, vdisk=vdisk)

    def metrics(self) -> str:
        """The OpenMetrics text exposition."""
        return self._control("metrics")

    def info(self) -> Dict:
        return self._control("info")
