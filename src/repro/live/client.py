"""Client for the live characterization daemon.

:class:`LiveStatsClient` wraps one TCP connection in the frame protocol
of :mod:`repro.live.protocol`.  Publishing chunks a command stream into
sequenced ``DATA_SEQ`` frames (each a raw run of 40-byte ``VSCSITR1``
records) and waits for the per-frame ack, which doubles as flow control
against the server's bounded shard queues.  Control methods
(:meth:`rotate`, :meth:`snapshot`, :meth:`enable`, :meth:`disable`,
:meth:`metrics`, :meth:`info`) mirror the daemon's control plane one to
one.

Resilience
----------
A failed round-trip (``OSError``, reset, truncated response) *always*
closes and discards the socket — a connection that may hold a
half-written request or half-read response is never reused; the next
call reconnects.

Data frames additionally retry with bounded exponential backoff.  Each
frame carries the client's session id and a monotone sequence number;
the server remembers the last ``(session, seq)`` it processed and the
exact ack bytes it produced, so a retry of a frame whose ack was lost
in transit is answered from that cache instead of being ingested twice.
The result: under connection faults, every acknowledged record is
counted exactly once and the merged histograms are byte-identical to a
fault-free run (pinned by ``tests/test_faults.py``).

Control operations are *not* retried — ``rotate`` is not idempotent —
so a transport failure there surfaces to the caller, who knows whether
repeating the op is safe.

Cluster awareness
-----------------
Against a :mod:`repro.live.cluster` edge, a data frame for a disk this
worker does not own is answered with a redirect error naming the
owner's direct address.  The client follows it transparently: it keeps
an independent ``(session, seq)`` stream per destination (each
worker's ack cache sees a gapless sequence), reconnects to the owner
and re-sends there.  On every reconnect to a peer it has published to
before, it first re-sends a session ``hello`` declaring the last
acknowledged sequence number — so a brand-new server process (a
worker that just inherited the session after a crash, or a restarted
daemon) learns the watermark *before* unacked frames are replayed,
instead of racing the empty ack cache.

A server-side error arrives as an ``ERROR`` frame and is raised as
:class:`LiveError`; the connection stays usable unless the transport
itself failed.  A mid-publish failure attaches the totals accumulated
so far as ``LiveError.partial``.
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from typing import Dict, Iterable, Optional

from ..core.tracing import TraceRecord
from ..faults import fire
from ..parallel.trace_io import TraceColumns, records_to_columns
from .protocol import (
    FRAME_ERROR,
    FRAME_OK,
    FRAME_TEXT,
    RECORD_BYTES,
    ProtocolError,
    columns_to_bytes,
    pack_control,
    pack_data_seq,
    read_frame,
    sort_columns_for_stream,
)

__all__ = [
    "DEFAULT_FRAME_RECORDS",
    "DEFAULT_RETRIES",
    "DEFAULT_RETRY_JITTER",
    "LiveConnectionError",
    "LiveError",
    "LiveStatsClient",
]

#: Default records per data frame — big enough to amortize the ack
#: round-trip and land in the numpy batch kernels, small enough to
#: bound per-frame latency and memory.
DEFAULT_FRAME_RECORDS = 32_768

#: Default data-frame retry budget (attempts beyond the first).
DEFAULT_RETRIES = 4

#: First backoff sleep; doubles per retry up to the cap.
DEFAULT_RETRY_BACKOFF = 0.05
DEFAULT_RETRY_BACKOFF_CAP = 2.0

#: Fraction of each backoff sleep randomized away.  A fleet of clients
#: (or uplinks) reconnecting after one shared event — a parent restart,
#: a network blip — would otherwise all retry on the identical
#: exponential schedule and thundering-herd the server in lockstep
#: waves; subtracting up to half of every sleep decorrelates them.
DEFAULT_RETRY_JITTER = 0.5

#: Redirect hops (and dead-route fallbacks) tolerated per data chunk
#: before giving up — bounds a routing loop during a cluster
#: generation change.
_MAX_REDIRECTS = 8


class LiveError(RuntimeError):
    """An ``ERROR`` response from the daemon, or a failed publish.

    ``partial`` (when set) carries the ``{"records", "frames",
    "accepted", "dropped", "ignored", "retried"}`` totals accumulated
    before a mid-stream failure, so a publisher can resume from the
    first unacknowledged frame instead of restarting blind.

    ``redirect`` (when set) is the ``[host, port]`` of the cluster
    worker that owns the frame's disk; the data plane follows it
    automatically, so callers only see it on control-plane errors.
    """

    def __init__(self, message: str, partial: Optional[Dict] = None,
                 redirect=None):
        super().__init__(message)
        self.partial = partial
        self.redirect = redirect


class _PeerState:
    """Retry identity against one destination address.

    Each cluster worker runs its own ack cache, so the gapless
    ``(session, seq)`` contract must hold *per destination*: one
    session id and one monotone counter per peer, derived from the
    client's base session so the streams never collide.
    """

    __slots__ = ("session", "seq", "last_acked")

    def __init__(self, session: str):
        self.session = session
        self.seq = 0
        self.last_acked = 0


class LiveConnectionError(LiveError, ConnectionError):
    """The transport died before a response arrived.

    Both a :class:`LiveError` (it ends a live operation) and a
    :class:`ConnectionError` (it is retried like one): the data plane's
    retry loop catches it as ``OSError``.
    """


class LiveStatsClient:
    """One connection to a :class:`~repro.live.server.LiveStatsServer`.

    ``retries``/``retry_backoff``/``retry_backoff_cap`` bound the
    data-plane retry loop: up to ``retries`` resends per frame,
    sleeping ``retry_backoff * 2**attempt`` (capped) between attempts.
    ``retries=0`` disables retry entirely.  ``retry_jitter`` randomizes
    each sleep downward by up to that fraction (``0`` reproduces the
    exact exponential schedule); the jitter stream is seeded from
    ``jitter_seed`` when given, else from this client's session id —
    deterministic per client, decorrelated across a fleet of them.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 30.0,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 retry_backoff_cap: float = DEFAULT_RETRY_BACKOFF_CAP,
                 retry_jitter: float = DEFAULT_RETRY_JITTER,
                 jitter_seed=None):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if not 0.0 <= retry_jitter <= 1.0:
            raise ValueError(
                f"retry_jitter must be in [0, 1], got {retry_jitter}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.retry_jitter = retry_jitter
        #: Lifetime count of data-frame resends (for tests/telemetry).
        self.retries_total = 0
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._connected_to: Optional[tuple] = None
        # Retry identity: one base session per client object; each
        # destination address gets its own derived session id and
        # monotone frame counter (see _PeerState).  Session ids
        # survive reconnects — that is the point.
        self._session = uuid.uuid4().hex
        self._backoff_rng = random.Random(
            jitter_seed if jitter_seed is not None else self._session)
        self._peers: Dict[tuple, _PeerState] = {}
        # Disk -> owning worker address, learned from redirects.
        self._routes: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    @property
    def _advertised(self) -> tuple:
        return (self.host, self.port)

    def _peer_state(self, addr: tuple) -> _PeerState:
        state = self._peers.get(addr)
        if state is None:
            session = (self._session if addr == self._advertised
                       else f"{self._session}@{addr[0]}:{addr[1]}")
            state = _PeerState(session)
            self._peers[addr] = state
        return state

    def connect(self) -> "LiveStatsClient":
        """Open the connection (idempotent)."""
        self._ensure_peer(self._advertised)
        return self

    def _ensure_peer(self, addr: tuple) -> None:
        """Connect to ``addr``, reusing a live connection to it.

        A (re)connect to a peer this client has already published to
        first re-sends the session hello declaring the last
        acknowledged seq, *before* any frame replay — the reconnect
        half of the ack-cache contract.
        """
        if self._sock is not None:
            if self._connected_to == addr:
                return
            self.close()
        sock = socket.create_connection(addr, timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._connected_to = addr
        state = self._peers.get(addr)
        if state is not None and state.seq > 0:
            self._hello_roundtrip(state)

    def _hello_roundtrip(self, state: _PeerState) -> None:
        """Declare ``state``'s ack watermark on a fresh connection.

        Written directly to the new socket (no reconnect recursion,
        no data-plane fault sites).  Transport failures discard the
        connection and propagate as the OSError the data plane's
        retry loop already handles.
        """
        frame = pack_control({"op": "hello", "session": state.session,
                              "seq": state.last_acked})
        try:
            self._wfile.write(frame)
            self._wfile.flush()
            response = read_frame(self._rfile)
        except (OSError, ValueError):
            self.close()
            raise
        if response is None:
            self.close()
            raise LiveConnectionError("connection closed during hello")
        ftype, payload = response
        if ftype == FRAME_ERROR:
            self.close()
            raise LiveError(
                f"session hello rejected: "
                f"{payload.decode('utf-8', 'replace')}"
            )

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._rfile = None
                self._wfile = None
                self._connected_to = None

    def __enter__(self) -> "LiveStatsClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes, addr: Optional[tuple] = None):
        self._ensure_peer(addr if addr is not None else self._advertised)
        try:
            action = fire("live.client.send")
            if action is not None and action.kind == "partial":
                # Injected short write: emit a truncated frame, then
                # fail the way a dying TCP connection would.
                cut = max(1, int(len(frame) * action.fraction))
                self._wfile.write(frame[:cut])
                self._wfile.flush()
                raise ConnectionResetError("injected short frame write")
            self._wfile.write(frame)
            self._wfile.flush()
            fire("live.client.recv")
            response = read_frame(self._rfile)
        except (OSError, ValueError):
            # The transport failed mid-round-trip.  The connection may
            # hold a half-written request or half-read response, so it
            # must never be reused — discard it; the next call
            # reconnects.
            self.close()
            raise
        if response is None:
            self.close()
            raise LiveConnectionError("connection closed by server")
        ftype, payload = response
        if ftype == FRAME_ERROR:
            redirect = None
            try:
                document = json.loads(payload.decode("utf-8"))
                message = document["error"]
                redirect = document.get("redirect")
            except Exception:  # pragma: no cover - defensive
                message = payload.decode("utf-8", "replace")
            raise LiveError(message, redirect=redirect)
        if ftype == FRAME_OK:
            return json.loads(payload.decode("utf-8"))
        if ftype == FRAME_TEXT:
            return payload.decode("utf-8")
        raise ProtocolError(f"unexpected response type 0x{ftype:02x}")

    def _data_roundtrip(self, frame: bytes, addr: Optional[tuple] = None):
        """Round-trip one sequenced data frame with bounded retry.

        Retries transport failures only (``OSError`` including
        :class:`LiveConnectionError`, and :class:`ProtocolError` from
        a response truncated by a dying connection); a semantic
        ``ERROR`` response raises immediately.  Safe because the frame
        carries ``(session, seq)``: the server answers a retry of an
        already-processed frame from its ack cache.
        """
        delay = self.retry_backoff
        attempt = 0
        while True:
            try:
                return self._roundtrip(frame, addr)
            except (ProtocolError, OSError):
                attempt += 1
                if attempt > self.retries:
                    raise
                self.retries_total += 1
                sleep = min(delay, self.retry_backoff_cap)
                if sleep > 0 and self.retry_jitter > 0:
                    sleep *= 1.0 - self.retry_jitter \
                        * self._backoff_rng.random()
                if sleep > 0:
                    time.sleep(sleep)
                delay *= 2

    def _control(self, op: str, **fields) -> Dict:
        body = {"op": op}
        body.update({k: v for k, v in fields.items() if v is not None})
        return self._roundtrip(pack_control(body))

    def _publish_chunk(self, vm: str, vdisk: str, chunk: bytes) -> Dict:
        """Send one data chunk to whichever worker owns the disk.

        Seq numbers are assigned once per ``(chunk, peer)``: a
        transport retry to the same peer re-sends the same seq (the
        server's ack cache deduplicates), while a redirect releases
        the slot — the refusing worker never reserved it — and the
        chunk restarts on the owner's own sequence stream.  A routed
        peer that died is dropped from the route cache and the chunk
        falls back to the advertised address, which knows the new
        owner.
        """
        key = (vm, vdisk)
        hops = 0
        assigned: Dict[tuple, int] = {}
        while True:
            addr = self._routes.get(key, self._advertised)
            state = self._peer_state(addr)
            seq = assigned.get(addr)
            if seq is None:
                state.seq += 1
                seq = state.seq
                assigned[addr] = seq
            frame = pack_data_seq(state.session, seq, vm, vdisk, chunk)
            try:
                ack = self._data_roundtrip(frame, addr)
            except LiveError as exc:
                if exc.redirect is not None and hops < _MAX_REDIRECTS:
                    hops += 1
                    # The redirecting worker never touched the
                    # session: release the slot if it is still the
                    # newest one on that peer.
                    if assigned.pop(addr, None) == state.seq:
                        state.seq -= 1
                    self._routes[key] = (str(exc.redirect[0]),
                                         int(exc.redirect[1]))
                    continue
                raise
            except (ProtocolError, OSError):
                if addr != self._advertised and hops < _MAX_REDIRECTS:
                    # The owning worker is unreachable (crashed or
                    # handed off): fall back to the advertised
                    # address for a fresh redirect.  The seq slot
                    # stays assigned — if routing leads back to this
                    # peer, the frame is retried with the same seq
                    # and deduplicated server-side.
                    hops += 1
                    self._routes.pop(key, None)
                    continue
                raise
            state.last_acked = max(state.last_acked, seq)
            return ack

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def publish_columns(self, vm: str, vdisk: str, columns: TraceColumns,
                        frame_records: int = DEFAULT_FRAME_RECORDS,
                        sort: bool = True) -> Dict:
        """Stream columns to the daemon as chunked data frames.

        ``sort=True`` (default) orders the whole stream by ``(issue,
        serial)`` first — required unless the caller guarantees stream
        order.  Returns ``{"records", "frames", "accepted", "dropped",
        "ignored", "retried"}`` totals.  Empty input returns
        zero totals without touching the wire.  On failure the raised
        :class:`LiveError` carries the totals accumulated so far as
        ``.partial``.
        """
        if frame_records < 1:
            raise ValueError(
                f"frame_records must be >= 1, got {frame_records}"
            )
        if sort:
            columns = sort_columns_for_stream(columns)
        body = columns_to_bytes(columns)
        total = {"records": len(columns), "frames": 0, "accepted": 0,
                 "dropped": 0, "ignored": 0, "retried": 0}
        if not body:
            return total
        step = frame_records * RECORD_BYTES
        start_retries = self.retries_total
        try:
            for offset in range(0, len(body), step):
                chunk = body[offset:offset + step]
                ack = self._publish_chunk(vm, vdisk, chunk)
                total["frames"] += 1
                total["accepted"] += ack.get("accepted", 0)
                total["dropped"] += ack.get("dropped", 0)
                total["ignored"] += ack.get("ignored", 0)
                total["retried"] = self.retries_total - start_retries
        except LiveError as exc:
            total["retried"] = self.retries_total - start_retries
            exc.partial = dict(total)
            raise
        except (ProtocolError, OSError) as exc:
            total["retried"] = self.retries_total - start_retries
            raise LiveError(
                f"publish failed after {total['frames']} acked frames: "
                f"{exc}", partial=dict(total)
            ) from exc
        total["retried"] = self.retries_total - start_retries
        return total

    def publish_records(self, vm: str, vdisk: str,
                        records: Iterable[TraceRecord],
                        frame_records: int = DEFAULT_FRAME_RECORDS) -> Dict:
        """Stream trace records (sorted into stream order first)."""
        return self.publish_columns(vm, vdisk, records_to_columns(records),
                                    frame_records=frame_records)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def ping(self) -> Dict:
        return self._control("ping")

    def rotate(self) -> Dict:
        """Seal the current epoch; returns ``{"epoch", "records", ...}``."""
        return self._control("rotate")

    def snapshot(self, scope: str = "all", epoch: Optional[int] = None,
                 aggregate: bool = False) -> Dict:
        """Fetch a snapshot document (see the server's op table)."""
        return self._control("snapshot", scope=scope, epoch=epoch,
                             aggregate=aggregate or None)

    def enable(self, vm: Optional[str] = None,
               vdisk: Optional[str] = None) -> Dict:
        return self._control("enable", vm=vm, vdisk=vdisk)

    def disable(self, vm: Optional[str] = None,
                vdisk: Optional[str] = None) -> Dict:
        return self._control("disable", vm=vm, vdisk=vdisk)

    def metrics(self) -> str:
        """The OpenMetrics text exposition."""
        return self._control("metrics")

    def info(self) -> Dict:
        return self._control("info")

    def verdicts(self) -> Dict:
        """The online analysis stage's rolling drift verdicts.

        Returns ``{"online": false}`` when the daemon runs without the
        analyzer; otherwise the analyzer's full document (per-disk
        latest :class:`~repro.analysis.online.EpochVerdict` dicts plus
        counters).  Cluster workers forward this to the coordinator,
        which owns the merged-epoch analysis.
        """
        return self._control("verdicts")

    def route(self) -> Dict:
        """The cluster worker table (single-server: one entry)."""
        return self._control("route")

    def hello(self) -> Dict:
        """Explicitly declare this client's ack watermark.

        Normally implicit — every reconnect to a previously published
        peer sends it — but exposed for tests and manual recovery.
        """
        state = self._peer_state(self._advertised)
        return self._control("hello", session=state.session,
                             seq=state.last_acked)
