"""Client for the live characterization daemon.

:class:`LiveStatsClient` wraps one TCP connection in the frame protocol
of :mod:`repro.live.protocol`.  Publishing chunks a command stream into
``DATA`` frames (each a raw run of 40-byte ``VSCSITR1`` records) and
waits for the per-frame ack, which doubles as flow control against the
server's bounded shard queues.  Control methods (:meth:`rotate`,
:meth:`snapshot`, :meth:`enable`, :meth:`disable`, :meth:`metrics`,
:meth:`info`) mirror the daemon's control plane one to one.

A server-side error arrives as an ``ERROR`` frame and is raised as
:class:`LiveError`; the connection stays usable unless the transport
itself failed.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Iterable, Optional

from ..core.tracing import TraceRecord
from ..parallel.trace_io import TraceColumns, records_to_columns
from .protocol import (
    FRAME_ERROR,
    FRAME_OK,
    FRAME_TEXT,
    RECORD_BYTES,
    ProtocolError,
    columns_to_bytes,
    pack_control,
    pack_data,
    read_frame,
    sort_columns_for_stream,
)

__all__ = ["LiveError", "LiveStatsClient", "DEFAULT_FRAME_RECORDS"]

#: Default records per data frame — big enough to amortize the ack
#: round-trip and land in the numpy batch kernels, small enough to
#: bound per-frame latency and memory.
DEFAULT_FRAME_RECORDS = 32_768


class LiveError(RuntimeError):
    """An ``ERROR`` response from the daemon."""


class LiveStatsClient:
    """One connection to a :class:`~repro.live.server.LiveStatsServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None

    # ------------------------------------------------------------------
    def connect(self) -> "LiveStatsClient":
        """Open the connection (idempotent)."""
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._rfile = sock.makefile("rb")
            self._wfile = sock.makefile("wb")
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._rfile = None
                self._wfile = None

    def __enter__(self) -> "LiveStatsClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes):
        self.connect()
        self._wfile.write(frame)
        self._wfile.flush()
        response = read_frame(self._rfile)
        if response is None:
            raise LiveError("connection closed by server")
        ftype, payload = response
        if ftype == FRAME_ERROR:
            try:
                message = json.loads(payload.decode("utf-8"))["error"]
            except Exception:  # pragma: no cover - defensive
                message = payload.decode("utf-8", "replace")
            raise LiveError(message)
        if ftype == FRAME_OK:
            return json.loads(payload.decode("utf-8"))
        if ftype == FRAME_TEXT:
            return payload.decode("utf-8")
        raise ProtocolError(f"unexpected response type 0x{ftype:02x}")

    def _control(self, op: str, **fields) -> Dict:
        body = {"op": op}
        body.update({k: v for k, v in fields.items() if v is not None})
        return self._roundtrip(pack_control(body))

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def publish_columns(self, vm: str, vdisk: str, columns: TraceColumns,
                        frame_records: int = DEFAULT_FRAME_RECORDS,
                        sort: bool = True) -> Dict:
        """Stream columns to the daemon as chunked data frames.

        ``sort=True`` (default) orders the whole stream by ``(issue,
        serial)`` first — required unless the caller guarantees stream
        order.  Returns ``{"records", "frames", "accepted", "dropped",
        "ignored"}`` totals.
        """
        if frame_records < 1:
            raise ValueError(
                f"frame_records must be >= 1, got {frame_records}"
            )
        if sort:
            columns = sort_columns_for_stream(columns)
        body = columns_to_bytes(columns)
        total = {"records": len(columns), "frames": 0, "accepted": 0,
                 "dropped": 0, "ignored": 0}
        step = frame_records * RECORD_BYTES
        for offset in range(0, len(body) or 1, step):
            chunk = body[offset:offset + step]
            if not chunk and total["frames"]:
                break
            ack = self._roundtrip(pack_data(vm, vdisk, chunk))
            total["frames"] += 1
            total["accepted"] += ack.get("accepted", 0)
            total["dropped"] += ack.get("dropped", 0)
            total["ignored"] += ack.get("ignored", 0)
        return total

    def publish_records(self, vm: str, vdisk: str,
                        records: Iterable[TraceRecord],
                        frame_records: int = DEFAULT_FRAME_RECORDS) -> Dict:
        """Stream trace records (sorted into stream order first)."""
        return self.publish_columns(vm, vdisk, records_to_columns(records),
                                    frame_records=frame_records)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def ping(self) -> Dict:
        return self._control("ping")

    def rotate(self) -> Dict:
        """Seal the current epoch; returns ``{"epoch", "records", ...}``."""
        return self._control("rotate")

    def snapshot(self, scope: str = "all", epoch: Optional[int] = None,
                 aggregate: bool = False) -> Dict:
        """Fetch a snapshot document (see the server's op table)."""
        return self._control("snapshot", scope=scope, epoch=epoch,
                             aggregate=aggregate or None)

    def enable(self, vm: Optional[str] = None,
               vdisk: Optional[str] = None) -> Dict:
        return self._control("enable", vm=vm, vdisk=vdisk)

    def disable(self, vm: Optional[str] = None,
                vdisk: Optional[str] = None) -> Dict:
        return self._control("disable", vm=vm, vdisk=vdisk)

    def metrics(self) -> str:
        """The OpenMetrics text exposition."""
        return self._control("metrics")

    def info(self) -> Dict:
        return self._control("info")
