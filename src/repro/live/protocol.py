"""Wire protocol of the live characterization daemon.

Every message in both directions is a *frame*::

    +----------------+--------------+------------------+
    | length (u32 BE)| type (u8)    | payload          |
    +----------------+--------------+------------------+

``length`` covers the type byte plus the payload.  Request frames:

* ``DATA`` (0x01) — a run of completed SCSI commands for one virtual
  disk.  Payload: ``u16 BE`` vm-name length, vm name (UTF-8), ``u16
  BE`` vdisk-name length, vdisk name, then raw 40-byte ``VSCSITR1``
  records (the exact on-disk layout of
  :data:`repro.core.tracing.BINARY_RECORD_FORMAT`, no magic).  Because
  the body *is* the columnar trace dtype, the server views it with
  ``np.frombuffer`` and lands directly in the batch kernels — zero
  per-record parsing.
* ``CONTROL`` (0x02) — a UTF-8 JSON object ``{"op": ...}``; see
  ``docs/live.md`` for the op table.
* ``DATA_SEQ`` (0x03) — a ``DATA`` frame prefixed with a retry
  identity: ``u16 BE`` session-id length, session id (UTF-8), ``u64
  BE`` sequence number (starting at 1, incremented per frame), then
  the ``DATA`` payload.  The server remembers, per session, the last
  sequence number and the exact response bytes it produced, so a
  client that lost an ack to a broken connection can resend the same
  frame and receive the original ack instead of double-ingesting —
  the mechanism behind :class:`repro.live.client.LiveStatsClient`'s
  idempotent retry.

Response frames:

* ``OK`` (0x81) — UTF-8 JSON result object.
* ``TEXT`` (0x82) — raw UTF-8 text (the OpenMetrics exposition).
* ``ERROR`` (0xEE) — UTF-8 JSON ``{"error": message}``.

Malformed input raises :class:`ProtocolError`, which the server turns
into an ``ERROR`` response.  Frames above :data:`MAX_FRAME_BYTES` are
rejected before any allocation, so a corrupt length prefix cannot make
the daemon balloon.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, Optional, Tuple

from ..core.tracing import BINARY_RECORD_FORMAT, TraceRecord
from ..parallel.trace_io import TRACE_DTYPE, TraceColumns

try:  # numpy is optional; every path has a pure fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the pure path
    _np = None

__all__ = [
    "FRAME_CONTROL",
    "FRAME_DATA",
    "FRAME_DATA_SEQ",
    "FRAME_ERROR",
    "FRAME_OK",
    "FRAME_TEXT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RECORD_BYTES",
    "ProtocolError",
    "bytes_to_columns",
    "columns_to_bytes",
    "pack_control",
    "pack_data",
    "pack_data_seq",
    "pack_error",
    "pack_frame",
    "pack_ok",
    "pack_redirect",
    "pack_text",
    "read_frame",
    "read_frame_view",
    "records_to_bytes",
    "sort_columns_for_stream",
    "unpack_control",
    "unpack_data",
    "unpack_data_seq",
]

PROTOCOL_VERSION = 1

FRAME_DATA = 0x01
FRAME_CONTROL = 0x02
FRAME_DATA_SEQ = 0x03
FRAME_OK = 0x81
FRAME_TEXT = 0x82
FRAME_ERROR = 0xEE

_REQUEST_TYPES = frozenset({FRAME_DATA, FRAME_CONTROL, FRAME_DATA_SEQ})
_RESPONSE_TYPES = frozenset({FRAME_OK, FRAME_TEXT, FRAME_ERROR})

#: Hard ceiling on one frame's (type + payload) size: a corrupt length
#: prefix must not turn into a multi-gigabyte allocation.  32 MiB is
#: room for ~800k records per data frame.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_RECORD_STRUCT = struct.Struct(BINARY_RECORD_FORMAT)
#: Size of one wire record (identical to the trace-file record).
RECORD_BYTES = _RECORD_STRUCT.size

_LEN = struct.Struct("!I")
_TYPE = struct.Struct("!B")
_NAME_LEN = struct.Struct("!H")
_SEQ = struct.Struct("!Q")


class ProtocolError(ValueError):
    """A malformed frame, name, body or command stream."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def pack_frame(ftype: int, payload: bytes = b"") -> bytes:
    """Serialize one frame (length prefix + type byte + payload)."""
    if not 0 <= ftype <= 0xFF:
        raise ProtocolError(f"frame type {ftype} out of range")
    body = _TYPE.pack(ftype) + payload
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(body)) + body


def read_frame(stream) -> Optional[Tuple[int, bytes]]:
    """Read one frame from a binary file object.

    Returns ``(type, payload)``, or ``None`` on a clean EOF at a frame
    boundary.  Raises :class:`ProtocolError` on a truncated frame, a
    zero-length body or an oversized length prefix.
    """
    head = stream.read(_LEN.size)
    if not head:
        return None
    if len(head) != _LEN.size:
        raise ProtocolError("truncated frame length prefix")
    (length,) = _LEN.unpack(head)
    if length < 1:
        raise ProtocolError("frame missing its type byte")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES"
        )
    body = stream.read(length)
    if len(body) != length:
        raise ProtocolError("truncated frame body")
    return body[0], body[1:]


def read_frame_view(stream, head=None) -> Optional[Tuple[int, memoryview]]:
    """:func:`read_frame` for the server's zero-copy ingest path.

    Same contract, two allocation differences: the 4-byte length
    prefix is read into a caller-preallocated scratch buffer
    (``head``, a ``bytearray`` of at least 4 bytes, reused across
    every frame on a connection), and the payload is returned as a
    :class:`memoryview` over the single body read — no ``body[1:]``
    copy — so ``np.frombuffer`` downstream views the received bytes
    directly.
    """
    if head is None:
        head = bytearray(_LEN.size)
    got = 0
    while got < _LEN.size:
        n = stream.readinto(memoryview(head)[got:_LEN.size])
        if not n:
            if got == 0:
                return None
            raise ProtocolError("truncated frame length prefix")
        got += n
    (length,) = _LEN.unpack_from(head)
    if length < 1:
        raise ProtocolError("frame missing its type byte")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES"
        )
    body = stream.read(length)
    if len(body) != length:
        raise ProtocolError("truncated frame body")
    return body[0], memoryview(body)[1:]


# ----------------------------------------------------------------------
# Data frames
# ----------------------------------------------------------------------
def _pack_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"name of {len(raw)} bytes is too long")
    return _NAME_LEN.pack(len(raw)) + raw


def pack_data(vm: str, vdisk: str, body: bytes) -> bytes:
    """Build a ``DATA`` frame carrying raw records for one disk."""
    if len(body) % RECORD_BYTES:
        raise ProtocolError(
            f"data body of {len(body)} bytes is not a whole number of "
            f"{RECORD_BYTES}-byte records"
        )
    return pack_frame(FRAME_DATA, _pack_name(vm) + _pack_name(vdisk) + body)


def unpack_data(payload) -> Tuple[str, str, memoryview]:
    """Split a ``DATA`` payload into ``(vm, vdisk, record bytes)``.

    The returned body is a :class:`memoryview` over ``payload`` —
    never a copy — so a server that read the frame with
    :func:`read_frame_view` hands the received bytes straight to
    ``np.frombuffer``.  It compares equal to the equivalent ``bytes``
    and everything downstream (:func:`bytes_to_columns`, the pure
    ``struct`` path) accepts it.
    """
    view = memoryview(payload)
    offset = 0
    names = []
    for _ in range(2):
        if len(view) < offset + _NAME_LEN.size:
            raise ProtocolError("data frame truncated in its name header")
        (nlen,) = _NAME_LEN.unpack_from(view, offset)
        offset += _NAME_LEN.size
        if len(view) < offset + nlen:
            raise ProtocolError("data frame truncated in a name")
        try:
            names.append(bytes(view[offset:offset + nlen]).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"undecodable name: {exc}") from None
        offset += nlen
    body = view[offset:]
    if len(body) % RECORD_BYTES:
        raise ProtocolError(
            f"data body of {len(body)} bytes is not a whole number of "
            f"{RECORD_BYTES}-byte records"
        )
    return names[0], names[1], body


def pack_data_seq(session: str, seq: int, vm: str, vdisk: str,
                  body: bytes) -> bytes:
    """Build a ``DATA_SEQ`` frame — a data frame with retry identity.

    ``session`` names one logical publishing stream (it survives
    reconnects); ``seq`` starts at 1 and increments per frame.  A
    resend of the same ``(session, seq)`` is byte-identical, which is
    what lets the server deduplicate it.
    """
    if seq < 1:
        raise ProtocolError(f"sequence number must be >= 1, got {seq}")
    if not session:
        raise ProtocolError("session id must be non-empty")
    if len(body) % RECORD_BYTES:
        raise ProtocolError(
            f"data body of {len(body)} bytes is not a whole number of "
            f"{RECORD_BYTES}-byte records"
        )
    return pack_frame(
        FRAME_DATA_SEQ,
        _pack_name(session) + _SEQ.pack(seq)
        + _pack_name(vm) + _pack_name(vdisk) + body,
    )


def unpack_data_seq(payload) -> Tuple[str, int, str, str, memoryview]:
    """Split a ``DATA_SEQ`` payload into
    ``(session, seq, vm, vdisk, record bytes)``."""
    view = memoryview(payload)
    if len(view) < _NAME_LEN.size:
        raise ProtocolError("data frame truncated in its session header")
    (slen,) = _NAME_LEN.unpack_from(view, 0)
    offset = _NAME_LEN.size
    if len(view) < offset + slen + _SEQ.size:
        raise ProtocolError("data frame truncated in its session header")
    try:
        session = bytes(view[offset:offset + slen]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable session id: {exc}") from None
    offset += slen
    (seq,) = _SEQ.unpack_from(view, offset)
    offset += _SEQ.size
    if not session or seq < 1:
        raise ProtocolError(
            "data frame needs a non-empty session id and a sequence "
            "number >= 1"
        )
    vm, vdisk, body = unpack_data(view[offset:])
    return session, seq, vm, vdisk, body


# ----------------------------------------------------------------------
# Record body <-> columns
# ----------------------------------------------------------------------
def bytes_to_columns(body: bytes) -> TraceColumns:
    """View a data-frame body as trace columns (zero-copy with numpy).

    Rejects bodies whose length is not a whole number of records and
    records whose completion precedes their issue (negative latency) —
    the same corruption the trace readers reject.
    """
    if len(body) % RECORD_BYTES:
        raise ProtocolError(
            f"data body of {len(body)} bytes is not a whole number of "
            f"{RECORD_BYTES}-byte records"
        )
    if _np is not None:
        arr = _np.frombuffer(body, dtype=TRACE_DTYPE)
        columns = TraceColumns(
            arr["serial"],
            arr["issue_ns"],
            arr["complete_ns"],
            arr["lba"],
            arr["nblocks"],
            (arr["flags"] & 1).astype(bool),
        )
        bad = _np.nonzero(columns.complete_ns < columns.issue_ns)[0]
        if bad.size:
            i = int(bad[0])
            raise ProtocolError(
                f"record at index {i}: complete_ns "
                f"{int(columns.complete_ns[i])} precedes issue_ns "
                f"{int(columns.issue_ns[i])} (negative latency)"
            )
        return columns
    cols = ([], [], [], [], [], [])
    for fields in struct.iter_unpack(BINARY_RECORD_FORMAT, body):
        for column, value in zip(cols, fields):
            column.append(value)
    for i, (t0, t1) in enumerate(zip(cols[1], cols[2])):
        if t1 < t0:
            raise ProtocolError(
                f"record at index {i}: complete_ns {t1} precedes "
                f"issue_ns {t0} (negative latency)"
            )
    return TraceColumns(cols[0], cols[1], cols[2], cols[3], cols[4],
                        [bool(f & 1) for f in cols[5]])


def columns_to_bytes(columns: TraceColumns) -> bytes:
    """Pack trace columns into a data-frame body."""
    n = len(columns)
    if _np is not None:
        arr = _np.zeros(n, dtype=TRACE_DTYPE)
        arr["serial"] = _np.asarray(columns.serial, dtype=_np.uint64)
        arr["issue_ns"] = _np.asarray(columns.issue_ns, dtype=_np.int64)
        arr["complete_ns"] = _np.asarray(columns.complete_ns,
                                         dtype=_np.int64)
        arr["lba"] = _np.asarray(columns.lba, dtype=_np.int64)
        arr["nblocks"] = _np.asarray(columns.nblocks, dtype=_np.uint32)
        arr["flags"] = _np.asarray(columns.is_read, dtype=bool).astype(
            _np.uint8
        )
        return arr.tobytes()
    pack = _RECORD_STRUCT.pack
    return b"".join(
        pack(serial, issue, complete, lba, nblocks, 1 if is_read else 0)
        for serial, issue, complete, lba, nblocks, is_read in zip(
            columns.serial, columns.issue_ns, columns.complete_ns,
            columns.lba, columns.nblocks, columns.is_read,
        )
    )


def records_to_bytes(records: Iterable[TraceRecord]) -> bytes:
    """Pack trace records into a data-frame body."""
    pack = _RECORD_STRUCT.pack
    return b"".join(
        pack(r.serial, r.issue_ns, r.complete_ns, r.lba, r.nblocks,
             1 if r.is_read else 0)
        for r in records
    )


def sort_columns_for_stream(columns: TraceColumns) -> TraceColumns:
    """Order columns by ``(issue_ns, serial)`` — the stream order.

    Live ingestion requires each disk's frames to arrive in
    non-decreasing ``(issue, serial)`` order (a real vSCSI capture
    point naturally emits them that way); publishers sort once before
    chunking so any trace, however stored, replays as a valid stream.
    """
    if _np is not None and isinstance(columns.issue_ns, _np.ndarray):
        issue = columns.issue_ns
        serial = columns.serial
        # Most real streams (capture points, replayed trace files)
        # arrive already ordered; detecting that is one vectorized
        # pass, much cheaper than an O(n log n) lexsort plus six
        # gather copies.
        if len(issue) < 2 or bool(
            _np.all(
                (issue[:-1] < issue[1:])
                | ((issue[:-1] == issue[1:]) & (serial[:-1] <= serial[1:]))
            )
        ):
            return columns
        order = _np.lexsort((columns.serial, columns.issue_ns))
        return TraceColumns(*(col[order] for col in columns.columns()))
    order = sorted(range(len(columns)),
                   key=lambda i: (columns.issue_ns[i], columns.serial[i]))
    return TraceColumns(*(
        [col[i] for i in order] for col in columns.columns()
    ))


# ----------------------------------------------------------------------
# Control / response frames
# ----------------------------------------------------------------------
def pack_control(op: Dict) -> bytes:
    """Build a ``CONTROL`` frame from an op object."""
    return pack_frame(FRAME_CONTROL, json.dumps(op).encode("utf-8"))


def unpack_control(payload) -> Dict:
    """Parse a ``CONTROL`` payload; must be a JSON object with "op"."""
    try:
        if isinstance(payload, memoryview):
            payload = bytes(payload)
        op = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable control frame: {exc}") from None
    if not isinstance(op, dict) or not isinstance(op.get("op"), str):
        raise ProtocolError('control frame must be a JSON object with "op"')
    return op


def pack_ok(result: Dict) -> bytes:
    """Build an ``OK`` response frame."""
    return pack_frame(FRAME_OK, json.dumps(result).encode("utf-8"))


def pack_text(text: str) -> bytes:
    """Build a ``TEXT`` response frame (OpenMetrics exposition)."""
    return pack_frame(FRAME_TEXT, text.encode("utf-8"))


def pack_error(message: str) -> bytes:
    """Build an ``ERROR`` response frame."""
    return pack_frame(FRAME_ERROR,
                      json.dumps({"error": message}).encode("utf-8"))


def pack_redirect(message: str, host: str, port: int) -> bytes:
    """Build an ``ERROR`` frame carrying a cluster redirect target.

    A cluster worker answers a data frame for a disk it does not own
    with one of these; the client re-routes the frame to ``(host,
    port)`` (see :class:`repro.live.client.LiveStatsClient` and
    :mod:`repro.live.cluster`).  Non-cluster-aware clients see a plain
    error, which is the correct degradation.
    """
    return pack_frame(
        FRAME_ERROR,
        json.dumps({"error": message,
                    "redirect": [host, port]}).encode("utf-8"),
    )
