"""Epoch-rotated snapshot ledger for the live daemon.

An *epoch* is the interval between two ``rotate`` operations.  Sealing
an epoch adopts every disk's collector into a fresh
:class:`~repro.core.service.HistogramService` (the same merge machinery
parallel replay uses), so a sealed epoch supports everything a service
does: per-disk lookup, JSON export, host-wide aggregation.  Rotation
never blocks queries on ingestion — clients read sealed epochs while
the current epoch keeps filling.

Because collectors merge exactly (associative, commutative, additive),
``merged()`` over any set of epochs is byte-identical to a service that
had seen those epochs' commands in one run — the property the epoch
tests pin.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.collector import DEFAULT_TIME_SLOT_NS, VscsiStatsCollector
from ..core.service import DiskKey, HistogramService
from ..core.window import DEFAULT_WINDOW_SIZE

__all__ = ["Epoch", "EpochLedger"]


class Epoch:
    """One sealed collection interval."""

    __slots__ = ("index", "service", "records", "start_unix",
                 "sealed_unix", "persisted", "quarantined",
                 "start_ns", "end_ns")

    def __init__(self, index: int, service: HistogramService,
                 records: int, sealed_unix: float,
                 start_unix: Optional[float] = None,
                 span_ns: Optional[Tuple[int, int]] = None):
        self.index = index
        self.service = service
        self.records = records
        #: When this epoch opened (previous rotation, or ledger birth).
        self.start_unix = sealed_unix if start_unix is None else start_unix
        self.sealed_unix = sealed_unix
        #: Whether the epoch has been written to an attached store.
        self.persisted = False
        #: Whether a store failure diverted this epoch to a sidecar
        #: file instead (see :meth:`EpochLedger._quarantine`).  A
        #: quarantined epoch is never re-appended to the store — a
        #: partial first attempt may already have landed some disks in
        #: the WAL, and appending them again would double-count.
        self.quarantined = False
        if span_ns is None:
            # Standalone construction: derive from the float clocks,
            # clamped non-empty.  The ledger always passes an explicit
            # integer span so consecutive epochs abut exactly.
            start_ns = int(self.start_unix * 1e9)
            end_ns = int(self.sealed_unix * 1e9)
            span_ns = (start_ns, max(end_ns, start_ns + 1))
        self.start_ns, self.end_ns = span_ns

    @property
    def span_ns(self) -> Tuple[int, int]:
        """Half-open ``[start_ns, end_ns)`` span in integer nanoseconds.

        Non-empty even for an instantaneous rotation, and — for
        ledger-sealed epochs — exactly abutting the neighbouring
        epochs' spans (``end_ns`` of one equals ``start_ns`` of the
        next, never overlapping), the invariant the store's range-query
        closure proof relies on.
        """
        return self.start_ns, self.end_ns

    def to_dict(self) -> Dict:
        """Per-disk snapshot dicts plus epoch metadata."""
        return {
            "epoch": self.index,
            "records": self.records,
            "start_unix": self.start_unix,
            "sealed_unix": self.sealed_unix,
            "persisted": self.persisted,
            "quarantined": self.quarantined,
            "disks": {
                f"{vm}/{vdisk}": collector.to_dict()
                for (vm, vdisk), collector in self.service.collectors()
            },
        }


class EpochLedger:
    """Append-only history of sealed epochs."""

    def __init__(self, window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 max_epochs: Optional[int] = None,
                 store=None):
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        #: Keep at most this many sealed epochs (older ones are folded
        #: into ``retired`` rather than discarded, so lifetime totals
        #: stay exact).  ``None`` keeps everything.
        self.max_epochs = max_epochs
        self.epochs: List[Epoch] = []
        self.retired = HistogramService(window_size=window_size,
                                        time_slot_ns=time_slot_ns)
        self.retired_records = 0
        #: ``(epoch_index, start_unix, sealed_unix, records)`` for every
        #: epoch folded into ``retired`` — retirement keeps lifetime
        #: totals exact but used to forget *when* the data was
        #: collected; these spans preserve the covered intervals.
        self.retired_spans: List[Tuple[int, float, float, int]] = []
        self._next_index = 0
        #: Moment the currently filling epoch opened.  The integer-ns
        #: boundary is authoritative for spans: the float mirror exists
        #: only for human-readable ``*_unix`` fields (a double cannot
        #: represent today's unix time to the nanosecond, so advancing
        #: it by a clamped +1 ns would silently round away).
        self._epoch_open_ns = time.time_ns()
        self._epoch_open_unix = self._epoch_open_ns / 1e9
        #: Optional :class:`~repro.store.HistogramStore` — every sealed
        #: epoch is appended (and a not-yet-persisted epoch is written
        #: before being retired).  The ledger never closes it.
        self.store = store
        #: A store failure flips this and stays flipped: the ledger
        #: keeps sealing (in-memory history is intact) but persistence
        #: can no longer be trusted end to end.  Surfaced in the
        #: server's ``info`` and OpenMetrics exposition.
        self.degraded = False
        #: One ``{"epoch", "error", "quarantined"}`` entry per failed
        #: persist (``quarantined`` is the sidecar path, or ``None``
        #: when even the sidecar write failed).
        self.persist_errors: List[Dict] = []

    def attach_store(self, store) -> None:
        """Persist sealed epochs to ``store`` from now on."""
        self.store = store

    def note_store_failure(self, message: str) -> None:
        """Record a store failure not tied to one epoch's seal
        (e.g. checkpoint/close at shutdown)."""
        self.degraded = True
        self.persist_errors.append(
            {"epoch": None, "error": message, "quarantined": None}
        )

    def _persist(self, epoch: Epoch) -> None:
        if self.store is None or epoch.persisted or epoch.quarantined:
            return
        try:
            start_ns, end_ns = epoch.span_ns
            # One group commit per epoch: every disk's record is
            # buffered into the WAL and sync=True lands the whole batch
            # with a single fsync — the epoch's durability point.
            self.store.append_epoch(epoch.service, start_ns, end_ns,
                                    sync=True)
        except (OSError, ValueError) as exc:
            # The store failed mid-seal (disk full, I/O error, closed
            # under our feet).  The epoch itself is fine — it lives in
            # memory and keeps answering queries — so degrade instead
            # of crashing: divert the snapshot to a sidecar file and
            # let ingestion continue.
            self._quarantine(epoch, exc)
        else:
            epoch.persisted = True

    def _quarantine(self, epoch: Epoch, exc: BaseException) -> None:
        """Divert a failed-persist epoch to a JSON sidecar.

        The sidecar (``<store>/quarantine/epoch-<index>.json``) holds
        the full per-disk snapshot plus the span, so an operator can
        re-import the epoch after fixing the store.  Written atomically
        and best-effort — under a real ``ENOSPC`` the sidecar volume
        is likely full too, in which case the failure is still
        recorded and the epoch still queryable in memory.
        """
        self.degraded = True
        epoch.quarantined = True
        entry: Dict = {"epoch": epoch.index,
                       "error": f"{type(exc).__name__}: {exc}",
                       "quarantined": None}
        try:
            directory = Path(self.store.path) / "quarantine"
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"epoch-{epoch.index:08d}.json"
            document = epoch.to_dict()
            document["span_ns"] = list(epoch.span_ns)
            document["error"] = entry["error"]
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(json.dumps(document, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")
            os.replace(tmp, path)
            entry["quarantined"] = str(path)
        except OSError:
            pass
        self.persist_errors.append(entry)

    def __len__(self) -> int:
        return len(self.epochs)

    def seal(self, pairs: Iterable[Tuple[DiskKey, VscsiStatsCollector]]) -> Epoch:
        """Seal one epoch from ``(disk key, collector)`` pairs.

        Empty epochs are legal (a rotation with no traffic) and still
        advance the epoch index, so epoch numbers align with rotation
        count.
        """
        service = HistogramService(window_size=self.window_size,
                                   time_slot_ns=self.time_slot_ns)
        records = 0
        for key, collector in pairs:
            service.adopt(key, collector)
            records += collector.commands
        # Clamp an instantaneous rotation to a non-empty span and
        # advance the open boundary to the *clamped* end, so the next
        # epoch starts where this one ended — spans abut, never
        # overlap.
        now_ns = time.time_ns()
        end_ns = max(now_ns, self._epoch_open_ns + 1)
        epoch = Epoch(self._next_index, service, records,
                      sealed_unix=end_ns / 1e9,
                      start_unix=self._epoch_open_unix,
                      span_ns=(self._epoch_open_ns, end_ns))
        self._epoch_open_ns = end_ns
        self._epoch_open_unix = end_ns / 1e9
        self._next_index += 1
        self.epochs.append(epoch)
        self._persist(epoch)
        if self.max_epochs is not None and len(self.epochs) > self.max_epochs:
            old = self.epochs.pop(0)
            # A store attached after ``old`` was sealed hasn't seen it
            # yet — write it out before the individual epoch vanishes
            # into the retired aggregate.
            self._persist(old)
            self.retired = self.retired.merge(old.service)
            self.retired_records += old.records
            self.retired_spans.append(
                (old.index, old.start_unix, old.sealed_unix, old.records)
            )
        return epoch

    def epoch(self, index: int) -> Epoch:
        """Look up a sealed epoch by its index."""
        for epoch in self.epochs:
            if epoch.index == index:
                return epoch
        raise KeyError(f"no sealed epoch {index} "
                       f"(retained: {[e.index for e in self.epochs]})")

    @property
    def last(self) -> Optional[Epoch]:
        """The most recently sealed epoch, if any."""
        return self.epochs[-1] if self.epochs else None

    def merged(self) -> HistogramService:
        """Exact merge of every sealed (and retired) epoch.

        Always a freshly built service — callers may adopt the current
        (unsealed) collectors into it without disturbing the ledger.
        """
        total = HistogramService(window_size=self.window_size,
                                 time_slot_ns=self.time_slot_ns)
        total = total.merge(self.retired)
        for epoch in self.epochs:
            total = total.merge(epoch.service)
        return total

    @property
    def records(self) -> int:
        """Records across every sealed (and retired) epoch."""
        return self.retired_records + sum(e.records for e in self.epochs)

    @property
    def covered_span_unix(self) -> Tuple[Optional[float], Optional[float]]:
        """``(start, end)`` of everything the ledger has ever sealed,
        retired epochs included — ``(None, None)`` before the first
        seal."""
        starts = [span[1] for span in self.retired_spans]
        starts += [e.start_unix for e in self.epochs]
        ends = [span[2] for span in self.retired_spans]
        ends += [e.sealed_unix for e in self.epochs]
        if not starts:
            return None, None
        return min(starts), max(ends)

    def to_dict(self) -> Dict:
        """Ledger summary: retained epoch metadata plus the retired
        spans, so retirement no longer erases *when* history happened
        (only its per-epoch resolution)."""
        start, end = self.covered_span_unix
        return {
            "epochs_sealed": self._next_index,
            "epochs_retained": len(self.epochs),
            "records": self.records,
            "covered_start_unix": start,
            "covered_end_unix": end,
            "retired": {
                "records": self.retired_records,
                "spans": [
                    {"epoch": index, "start_unix": s, "sealed_unix": e,
                     "records": records}
                    for index, s, e, records in self.retired_spans
                ],
            },
            "retained": [
                {"epoch": e.index, "start_unix": e.start_unix,
                 "sealed_unix": e.sealed_unix, "records": e.records,
                 "persisted": e.persisted, "quarantined": e.quarantined}
                for e in self.epochs
            ],
            "persisting": self.store is not None,
            "degraded": self.degraded,
            "persist_failures": len(self.persist_errors),
        }
