"""Epoch-rotated snapshot ledger for the live daemon.

An *epoch* is the interval between two ``rotate`` operations.  Sealing
an epoch adopts every disk's collector into a fresh
:class:`~repro.core.service.HistogramService` (the same merge machinery
parallel replay uses), so a sealed epoch supports everything a service
does: per-disk lookup, JSON export, host-wide aggregation.  Rotation
never blocks queries on ingestion — clients read sealed epochs while
the current epoch keeps filling.

Because collectors merge exactly (associative, commutative, additive),
``merged()`` over any set of epochs is byte-identical to a service that
had seen those epochs' commands in one run — the property the epoch
tests pin.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.collector import DEFAULT_TIME_SLOT_NS, VscsiStatsCollector
from ..core.service import DiskKey, HistogramService
from ..core.window import DEFAULT_WINDOW_SIZE

__all__ = ["Epoch", "EpochLedger"]


class Epoch:
    """One sealed collection interval."""

    __slots__ = ("index", "service", "records", "sealed_unix")

    def __init__(self, index: int, service: HistogramService,
                 records: int, sealed_unix: float):
        self.index = index
        self.service = service
        self.records = records
        self.sealed_unix = sealed_unix

    def to_dict(self) -> Dict:
        """Per-disk snapshot dicts plus epoch metadata."""
        return {
            "epoch": self.index,
            "records": self.records,
            "sealed_unix": self.sealed_unix,
            "disks": {
                f"{vm}/{vdisk}": collector.to_dict()
                for (vm, vdisk), collector in self.service.collectors()
            },
        }


class EpochLedger:
    """Append-only history of sealed epochs."""

    def __init__(self, window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 max_epochs: Optional[int] = None):
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        #: Keep at most this many sealed epochs (older ones are folded
        #: into ``retired`` rather than discarded, so lifetime totals
        #: stay exact).  ``None`` keeps everything.
        self.max_epochs = max_epochs
        self.epochs: List[Epoch] = []
        self.retired = HistogramService(window_size=window_size,
                                        time_slot_ns=time_slot_ns)
        self.retired_records = 0
        self._next_index = 0

    def __len__(self) -> int:
        return len(self.epochs)

    def seal(self, pairs: Iterable[Tuple[DiskKey, VscsiStatsCollector]]) -> Epoch:
        """Seal one epoch from ``(disk key, collector)`` pairs.

        Empty epochs are legal (a rotation with no traffic) and still
        advance the epoch index, so epoch numbers align with rotation
        count.
        """
        service = HistogramService(window_size=self.window_size,
                                   time_slot_ns=self.time_slot_ns)
        records = 0
        for key, collector in pairs:
            service.adopt(key, collector)
            records += collector.commands
        epoch = Epoch(self._next_index, service, records, time.time())
        self._next_index += 1
        self.epochs.append(epoch)
        if self.max_epochs is not None and len(self.epochs) > self.max_epochs:
            old = self.epochs.pop(0)
            self.retired = self.retired.merge(old.service)
            self.retired_records += old.records
        return epoch

    def epoch(self, index: int) -> Epoch:
        """Look up a sealed epoch by its index."""
        for epoch in self.epochs:
            if epoch.index == index:
                return epoch
        raise KeyError(f"no sealed epoch {index} "
                       f"(retained: {[e.index for e in self.epochs]})")

    @property
    def last(self) -> Optional[Epoch]:
        """The most recently sealed epoch, if any."""
        return self.epochs[-1] if self.epochs else None

    def merged(self) -> HistogramService:
        """Exact merge of every sealed (and retired) epoch.

        Always a freshly built service — callers may adopt the current
        (unsealed) collectors into it without disturbing the ledger.
        """
        total = HistogramService(window_size=self.window_size,
                                 time_slot_ns=self.time_slot_ns)
        total = total.merge(self.retired)
        for epoch in self.epochs:
            total = total.merge(epoch.service)
        return total

    @property
    def records(self) -> int:
        """Records across every sealed (and retired) epoch."""
        return self.retired_records + sum(e.records for e in self.epochs)
