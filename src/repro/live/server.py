"""``repro.live`` — the online streaming characterization daemon.

:class:`LiveStatsServer` is the live analogue of running ``vscsiStats``
inside the hypervisor: a long-running service that characterizes I/O
*while it happens* instead of replaying finished traces.  Clients speak
the length-prefixed frame protocol of :mod:`repro.live.protocol` over
TCP:

* ``DATA`` frames carry raw 40-byte ``VSCSITR1`` records for one
  ``(vm, vdisk)``; the connection handler views the body as numpy
  columns (zero per-record parsing) and routes it to the shard worker
  that owns that disk.
* ``CONTROL`` frames drive the query/control plane: ``snapshot``,
  ``rotate``, ``enable``/``disable``, ``metrics`` (OpenMetrics text),
  ``info``, ``ping``, ``reset``.

Architecture::

    client conns (1 thread each)          shard workers (N threads)
    ───────────────────────────           ──────────────────────────
    read frame → decode/validate  ──put→  bounded queue → DiskStream
    ← ack / error                          (per-disk collectors)

Disks are hashed to shard workers (crc32, stable), so each disk's
stream is mutated by exactly one thread — the same whole-stream
ownership rule the parallel replay driver uses.  Queues are bounded;
``backpressure="block"`` makes producers wait (acks double as flow
control), ``backpressure="drop"`` sheds the batch and counts the
dropped records, surfaced in ``info`` and the exposition.

``rotate()`` seals the current epoch **atomically**: every worker is
parked at a barrier, each disk's collector is handed to the epoch
ledger and replaced by a lazily-created continuation collector
(:mod:`repro.live.stream`), then the workers resume.  Sealing is O(m)
per disk — bins, not commands — so rotation stalls ingestion for
microseconds to milliseconds regardless of traffic.

Shutdown drains: pending queue items are processed, then the partial
epoch is flushed into the ledger so no acked command is ever lost.

Resilience: sequenced ``DATA_SEQ`` frames are deduplicated per client
session (a retry of a frame whose ack was lost is answered from a
cached ack, never ingested twice — the client side of this contract
lives in :mod:`repro.live.client`), and a store that fails mid-seal
degrades instead of crashing: the epoch is quarantined to a JSON
sidecar, ``info``/``metrics`` flip a visible ``degraded`` flag, and
ingestion continues (see :class:`repro.live.epochs.EpochLedger`).
"""

from __future__ import annotations

import json
import socket
import threading
import zlib
from collections import OrderedDict
from queue import Empty, Full, Queue
from typing import Dict, List, Optional, Tuple

from ..core.collector import DEFAULT_TIME_SLOT_NS, VscsiStatsCollector
from ..core.service import DiskKey, HistogramService
from ..core.window import DEFAULT_WINDOW_SIZE
from ..faults import fire
from .epochs import Epoch, EpochLedger
from .exposition import render_openmetrics
from .protocol import (
    FRAME_CONTROL,
    FRAME_DATA,
    FRAME_DATA_SEQ,
    ProtocolError,
    bytes_to_columns,
    pack_error,
    pack_ok,
    pack_redirect,
    pack_text,
    read_frame_view,
    unpack_control,
    unpack_data,
    unpack_data_seq,
)
from .stream import DiskStream

__all__ = ["LiveStatsServer"]

_SHUTDOWN = object()

#: Retry-identity sessions remembered for ack deduplication.  Each
#: entry is one publisher's last frame — tiny (the cached ack bytes) —
#: so the cache is effectively "every publisher seen lately".
_MAX_SESSIONS = 1024

#: How long a retried frame waits for the original's in-flight ingest
#: before giving up (matches the order of a worst-case blocked queue).
_DUPLICATE_WAIT_SECONDS = 30.0

#: Control ops with cluster-wide meaning.  A cluster worker does not
#: answer these from its own partial view — it relays them to the
#: coordinator (``forward_control``), which owns the merged history,
#: the durable store and the canonical exposition.
_CLUSTER_FORWARDED_OPS = frozenset(
    {"rotate", "snapshot", "metrics", "info", "enable", "disable",
     "verdicts"}
)


class _SessionEntry:
    """Per-session retry state: last seq seen and its cached ack.

    ``done`` is set once ``response`` holds the exact bytes the
    original frame was (or would have been) answered with; a retry
    that arrives while the original is still being ingested waits on
    it instead of ingesting again.
    """

    __slots__ = ("seq", "response", "done")

    def __init__(self, seq: int):
        self.seq = seq
        self.response: Optional[bytes] = None
        self.done = threading.Event()


class _DataItem:
    """One enqueued ingest batch, acked after processing."""

    __slots__ = ("key", "columns", "done", "accepted", "error")

    def __init__(self, key: DiskKey, columns):
        self.key = key
        self.columns = columns
        self.done = threading.Event()
        self.accepted = 0
        self.error: Optional[str] = None


class _Barrier:
    """Parks a worker until the control plane finishes a swap."""

    __slots__ = ("paused", "resume")

    def __init__(self):
        self.paused = threading.Event()
        self.resume = threading.Event()


class _ShardWorker(threading.Thread):
    """Owns the disk streams hashed to one shard."""

    def __init__(self, index: int, server: "LiveStatsServer",
                 queue_depth: int):
        super().__init__(name=f"live-shard-{index}", daemon=True)
        self.index = index
        self.server = server
        self.queue: "Queue" = Queue(maxsize=queue_depth)
        self.streams: Dict[DiskKey, DiskStream] = {}

    def stream_for(self, key: DiskKey) -> DiskStream:
        stream = self.streams.get(key)
        if stream is None:
            stream = DiskStream(window_size=self.server.window_size,
                                time_slot_ns=self.server.time_slot_ns,
                                backend=self.server.backend)
            self.streams[key] = stream
        return stream

    def run(self) -> None:
        while True:
            item = self.queue.get()
            if item is _SHUTDOWN:
                return
            if isinstance(item, _Barrier):
                item.paused.set()
                item.resume.wait()
                continue
            try:
                item.accepted = self.stream_for(item.key).ingest(item.columns)
            except ProtocolError as exc:
                item.error = str(exc)
            except Exception as exc:  # never kill the worker thread
                item.error = f"internal error: {exc!r}"
            finally:
                item.done.set()


class LiveStatsServer:
    """Long-running network characterization daemon.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address` after :meth:`start`).
    shards:
        Shard worker threads; each ``(vm, vdisk)`` is owned by one.
    queue_depth:
        Bounded depth of each shard's ingest queue (in batches).
    backpressure:
        ``"block"`` — a full queue makes the producing connection wait
        (acks provide flow control).  ``"drop"`` — the batch is shed
        and its records counted in ``dropped_records_total``.
    idle_timeout:
        Seconds a connection may sit silent before it is closed.
    rotate_every:
        Optional period in seconds for automatic epoch rotation.
    max_epochs:
        Sealed epochs to retain individually (older ones fold into a
        retired aggregate, keeping lifetime totals exact).
    start_enabled:
        The daemon's reason to exist is ingestion, so unlike the
        in-hypervisor service it starts enabled; pass ``False`` to
        require an explicit ``enable``.
    store:
        Optional durable history: a directory path (opened or created
        as a :class:`~repro.store.HistogramStore`) or an already-open
        store.  Every sealed epoch is appended to it, so rotation
        doubles as persistence and ``repro store query`` can read the
        daemon's history after it exits.  A path-opened store is owned
        (checkpointed and closed) by the server; a passed-in instance
        is the caller's to close.
    reuse_port:
        Bind the listener with ``SO_REUSEPORT`` so several worker
        processes can share one public port (the cluster mode of
        :mod:`repro.live.cluster`); the kernel load-balances accepted
        connections across them.
    direct_port:
        When not ``None``, bind a second listener on this port (``0``
        for ephemeral — see :attr:`direct_address`) serving the same
        protocol.  A cluster worker uses it as its worker-private
        address: redirects and coordinator commands name it
        unambiguously even though every worker shares the public port.
    on_seal:
        Optional callback invoked with each sealed
        :class:`~repro.live.epochs.Epoch` (rotation and the final
        drain-on-close seal), under the control lock.  The cluster
        worker's fan-in forwarding hangs off this hook.
    cluster_member:
        Enables the worker-internal control ops (``worker-*``) that a
        cluster coordinator drives; plain standalone servers reject
        them.
    online:
        The online fingerprint/drift stage
        (:class:`repro.analysis.online.OnlineAnalyzer`).  ``True``
        (default) analyzes every sealed epoch with the default
        :class:`~repro.analysis.online.DriftConfig`; pass a
        ``DriftConfig`` to tune it, an analyzer instance to share one,
        or ``False`` to disable.  With an attached store the analyzer
        seeds its baselines from the store's existing history, so a
        restarted daemon compares against everything recorded, not
        just its own uptime.  Cluster *workers* run with the stage off
        — the coordinator analyzes the merged epochs instead.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 shards: int = 2, queue_depth: int = 64,
                 backpressure: str = "block",
                 idle_timeout: Optional[float] = 60.0,
                 window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 backend: Optional[str] = None,
                 rotate_every: Optional[float] = None,
                 max_epochs: Optional[int] = None,
                 start_enabled: bool = True,
                 store=None,
                 reuse_port: bool = False,
                 direct_port: Optional[int] = None,
                 on_seal=None,
                 cluster_member: bool = False,
                 online=True):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if backpressure not in ("block", "drop"):
            raise ValueError(
                f'backpressure must be "block" or "drop", '
                f"got {backpressure!r}"
            )
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError(
                "SO_REUSEPORT is not available on this platform"
            )
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self.direct_port = direct_port
        #: ``(host, port)`` of the direct listener once started.
        self.direct_address: Optional[Tuple[str, int]] = None
        self.cluster_member = cluster_member
        #: Cluster routing: an object with ``redirect_for(vm, vdisk)``
        #: returning the owning worker's ``(host, port)`` (or ``None``
        #: when this worker owns the disk / no table is installed).
        self.router = None
        #: Cluster relay: ``callable(payload) -> response frame
        #: bytes`` for control ops with cluster-wide meaning.
        self.forward_control = None
        #: Extension control ops (``{"op-name": callable(op) ->
        #: dict}``) — the cluster worker registers its ``worker-*``
        #: handlers here instead of subclassing.
        self.control_handlers: Dict[str, "object"] = {}
        self._on_seal = on_seal
        self.backpressure = backpressure
        self.idle_timeout = idle_timeout
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        self.backend = backend
        self.rotate_every = rotate_every

        self._owns_store = False
        if store is not None and not hasattr(store, "append"):
            from ..store import HistogramStore
            store = HistogramStore.open_or_create(store)
            self._owns_store = True
        self.store = store

        self.ledger = EpochLedger(window_size=window_size,
                                  time_slot_ns=time_slot_ns,
                                  max_epochs=max_epochs,
                                  store=store)

        #: Streaming fingerprint/drift stage fed by every seal.
        self.analyzer = None
        self.analysis_errors_total = 0
        if online:
            from ..analysis.online import DriftConfig, OnlineAnalyzer
            if hasattr(online, "observe_epoch"):
                self.analyzer = online
            elif isinstance(online, DriftConfig):
                self.analyzer = OnlineAnalyzer(online)
            else:
                self.analyzer = OnlineAnalyzer()
            if store is not None:
                # Baselines start from the recorded history; a fresh
                # store seeds nothing.  Failures leave the analyzer
                # unseeded rather than blocking startup.
                try:
                    self.analyzer.seed_from_store(store)
                except (OSError, ValueError):
                    pass
        # The enable/disable registry is a HistogramService used purely
        # for its gating semantics (global flag + per-disk overrides),
        # so the daemon's surface matches the in-hypervisor tool's.
        self._gate = HistogramService(window_size=window_size,
                                      time_slot_ns=time_slot_ns)
        self._gate.enabled = start_enabled

        self._workers = [
            _ShardWorker(index, self, queue_depth) for index in range(shards)
        ]
        self._listener: Optional[socket.socket] = None
        self._direct_listener: Optional[socket.socket] = None
        self._accept_threads: List[threading.Thread] = []
        self._rotate_timer: Optional[threading.Timer] = None
        self._stopping = threading.Event()
        self._started = False
        self._closed = False

        self._control_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._session_lock = threading.Lock()
        self._sessions: "OrderedDict[str, _SessionEntry]" = OrderedDict()
        self._conns: set = set()
        self.duplicate_frames_total = 0  # retries answered from cache
        self.redirected_frames_total = 0  # non-owned disks bounced
        self.frames_total = 0
        self.records_total = 0
        self.ignored_records_total = 0   # disabled-disk data frames
        self.dropped_records_total = 0   # backpressure sheds
        self.rejected_frames_total = 0   # malformed / out-of-order
        self.connections_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _bind_listener(self, port: int, reuse_port: bool) -> socket.socket:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        listener.bind((self.host, port))
        listener.listen(32)
        return listener

    def start(self) -> "LiveStatsServer":
        """Bind, listen and start worker/acceptor threads."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        listener = self._bind_listener(self.port, self.reuse_port)
        self._listener = listener
        self.port = listener.getsockname()[1]
        if self.direct_port is not None:
            direct = self._bind_listener(self.direct_port, False)
            self._direct_listener = direct
            self.direct_address = (self.host, direct.getsockname()[1])
        for worker in self._workers:
            worker.start()
        for name, sock in (("live-accept", self._listener),
                           ("live-accept-direct", self._direct_listener)):
            if sock is None:
                continue
            thread = threading.Thread(
                target=self._accept_loop, args=(sock,), name=name,
                daemon=True,
            )
            thread.start()
            self._accept_threads.append(thread)
        if self.rotate_every:
            self._schedule_rotate()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return (self.host, self.port)

    def __enter__(self) -> "LiveStatsServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self, drain: bool = True) -> None:
        """Stop the daemon.

        With ``drain=True`` (default) every queued batch is processed
        and the partial epoch is flushed into the ledger before
        workers exit, so all acked data remains queryable in-process
        (:meth:`snapshot_dict`, :meth:`merged_service`).
        """
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        # Timer.cancel() does not stop a callback that already fired
        # past the _stopping check, so wait the in-flight rotation out
        # (it may have re-armed once meanwhile — loop until the chain
        # is dead; _schedule_rotate never arms after _stopping is set).
        while True:
            timer = self._rotate_timer
            if timer is None:
                break
            timer.cancel()
            if timer is not threading.current_thread():
                timer.join(timeout=10.0)
            if self._rotate_timer is timer:
                break
        for listener, address in ((self._listener, self.address),
                                  (self._direct_listener,
                                   self.direct_address)):
            if listener is None:
                continue
            # A blocked accept() is not reliably woken by closing the
            # listener from another thread; a loopback connect is.
            try:
                socket.create_connection(address, timeout=1.0).close()
            except OSError:
                pass
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
        with self._stats_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for worker in self._workers:
            if worker.is_alive():
                if not drain:
                    # Shed queued work before the sentinel.
                    try:
                        while True:
                            item = worker.queue.get_nowait()
                            if isinstance(item, _DataItem):
                                item.error = "server shutting down"
                                item.done.set()
                    except Empty:
                        pass
                worker.queue.put(_SHUTDOWN)
                worker.join(timeout=10.0)
        for thread in self._accept_threads:
            thread.join(timeout=5.0)
        # The control lock serializes this final seal and the store
        # shutdown against any straggling rotate() (timer or client):
        # no double-seal of the same collectors, no append to a closed
        # store.
        with self._control_lock:
            if drain:
                # Flush the partial epoch so acked commands stay
                # queryable.
                pairs = self._seal_all_streams()
                if pairs:
                    epoch = self.ledger.seal(pairs)
                    self._fire_on_seal(epoch)
            if self.store is not None and self._owns_store:
                # A store that fails at the very end must not lose the
                # in-memory state or leave the flock held: record the
                # failure (degraded, like a failed seal) and still
                # close.  The WAL keeps anything the checkpoint could
                # not seal into a segment.
                try:
                    self.store.checkpoint()
                except (OSError, ValueError) as exc:
                    self.ledger.note_store_failure(
                        f"checkpoint on close: {exc}")
                try:
                    self.store.close()
                except (OSError, ValueError) as exc:
                    self.ledger.note_store_failure(
                        f"store close: {exc}")

    def _schedule_rotate(self) -> None:
        if self._stopping.is_set():
            return
        timer = threading.Timer(self.rotate_every, self._timed_rotate)
        timer.daemon = True
        self._rotate_timer = timer
        timer.start()

    def _timed_rotate(self) -> None:
        if self._stopping.is_set():
            return
        try:
            self.rotate()
        except ValueError:
            return  # server closed concurrently; the timer chain ends
        finally:
            self._schedule_rotate()

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed
            self._start_connection(conn)

    def _start_connection(self, conn: socket.socket) -> None:
        with self._stats_lock:
            self._conns.add(conn)
            self.connections_total += 1
        thread = threading.Thread(
            target=self._serve_connection, args=(conn,),
            name="live-conn", daemon=True,
        )
        thread.start()

    def adopt_connection(self, conn: socket.socket) -> None:
        """Serve an externally accepted connection.

        The fd-passing fallback of :mod:`repro.live.cluster` accepts
        on a single listener and hands the connected sockets to worker
        processes over ``SCM_RIGHTS``; the receiving side re-wraps the
        descriptor and injects it here, after which it is
        indistinguishable from a locally accepted connection.
        """
        if self._stopping.is_set() or not self._started:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            return
        self._start_connection(conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            if self.idle_timeout is not None:
                conn.settimeout(self.idle_timeout)
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            # One preallocated length-prefix scratch per connection:
            # the frame reader fills it in place instead of
            # allocating a 4-byte object per frame.
            head = bytearray(4)
            while not self._stopping.is_set():
                try:
                    fire("live.server.recv")
                    frame = read_frame_view(rfile, head)
                except ProtocolError as exc:
                    # Framing is broken; report and drop the link
                    # (there is no way to resynchronize a byte stream
                    # with a corrupt length prefix).
                    self._count_rejected()
                    self._send(wfile, pack_error(str(exc)))
                    return
                except (socket.timeout, TimeoutError):
                    return  # idle client
                if frame is None:
                    return  # clean EOF
                ftype, payload = frame
                try:
                    if ftype == FRAME_DATA:
                        response = self._handle_data(payload)
                    elif ftype == FRAME_DATA_SEQ:
                        response = self._handle_data_seq(payload)
                    elif ftype == FRAME_CONTROL:
                        response = self._handle_control(payload)
                    else:
                        raise ProtocolError(
                            f"unknown frame type 0x{ftype:02x}"
                        )
                except ProtocolError as exc:
                    self._count_rejected()
                    response = pack_error(str(exc))
                if not self._send(wfile, response):
                    return
        except (OSError, ValueError):
            return  # connection torn down mid-frame
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            with self._stats_lock:
                self._conns.discard(conn)

    @staticmethod
    def _send(wfile, data: bytes) -> bool:
        try:
            action = fire("live.server.send")
            if action is not None and action.kind == "partial":
                # Injected short write: the client sees a truncated
                # response, exactly as if the connection died mid-ack.
                wfile.write(data[:max(1, int(len(data) * action.fraction))])
                wfile.flush()
                return False
            wfile.write(data)
            wfile.flush()
            return True
        except (OSError, ValueError):
            return False

    def _count_rejected(self) -> None:
        with self._stats_lock:
            self.rejected_frames_total += 1

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _worker_for(self, key: DiskKey) -> _ShardWorker:
        digest = zlib.crc32(f"{key[0]}\x00{key[1]}".encode("utf-8"))
        return self._workers[digest % len(self._workers)]

    def _redirect_for(self, vm: str, vdisk: str) -> Optional[bytes]:
        """A redirect response when another cluster worker owns the
        disk, else ``None``.  Checked *before* any session-state
        mutation, so a bounced frame leaves no trace here — the owner
        sees the untouched ``(session, seq)`` stream."""
        if self.router is None:
            return None
        target = self.router.redirect_for(vm, vdisk)
        if target is None:
            return None
        with self._stats_lock:
            self.redirected_frames_total += 1
        host, port = target
        return pack_redirect(
            f"disk {vm}/{vdisk} is owned by worker at {host}:{port}",
            host, port,
        )

    def _handle_data(self, payload: bytes) -> bytes:
        vm, vdisk, body = unpack_data(payload)
        redirect = self._redirect_for(vm, vdisk)
        if redirect is not None:
            return redirect
        return self._ingest(vm, vdisk, body)

    def _handle_data_seq(self, payload: bytes) -> bytes:
        """A sequenced data frame: ingest once, answer retries from
        cache.

        The dedup decision happens *before* ingestion: the ``(session,
        seq)`` slot is reserved under the session lock, so a retry that
        races the original (the client timed out while the original is
        still blocked on a full shard queue) waits for the original's
        ack instead of ingesting the same records twice.  Cached
        responses include ``ERROR`` answers — a retry of a
        semantically rejected frame is rejected identically, keeping
        the client's view consistent.
        """
        session, seq, vm, vdisk, body = unpack_data_seq(payload)
        redirect = self._redirect_for(vm, vdisk)
        if redirect is not None:
            return redirect
        with self._session_lock:
            entry = self._sessions.get(session)
            if entry is not None and seq == entry.seq:
                fresh = None  # duplicate of the last (maybe in-flight) frame
            elif entry is not None and seq < entry.seq:
                raise ProtocolError(
                    f"stale data frame seq {seq} for session "
                    f"{session!r} (last seen {entry.seq})"
                )
            elif entry is not None and seq > entry.seq + 1:
                raise ProtocolError(
                    f"data frame seq gap for session {session!r}: got "
                    f"{seq}, expected {entry.seq + 1}"
                )
            elif entry is not None and entry.response is None:
                # seq == entry.seq + 1 while entry is still in flight:
                # a sequential client never advances past an unacked
                # frame, so this is protocol misuse.
                raise ProtocolError(
                    f"data frame seq {seq} for session {session!r} "
                    f"while seq {entry.seq} is still in flight"
                )
            else:
                fresh = _SessionEntry(seq)
                self._sessions[session] = fresh
                self._sessions.move_to_end(session)
                while len(self._sessions) > _MAX_SESSIONS:
                    oldest = next(iter(self._sessions))
                    if self._sessions[oldest].response is None:
                        break  # never evict an in-flight entry
                    del self._sessions[oldest]
        if fresh is None:
            if not entry.done.wait(timeout=_DUPLICATE_WAIT_SECONDS):
                raise ProtocolError(
                    f"retried frame seq {seq} for session {session!r} "
                    f"is still being ingested"
                )
            with self._stats_lock:
                self.duplicate_frames_total += 1
            return entry.response
        try:
            response = self._ingest(vm, vdisk, body)
        except ProtocolError as exc:
            self._count_rejected()
            response = pack_error(str(exc))
        except BaseException:
            # Ingestion died before producing an ack (only reachable
            # outside the ProtocolError path, e.g. interpreter
            # shutdown).  Nothing was acknowledged, so forget the slot
            # — a retry re-ingests from scratch — and wake any waiter.
            with self._session_lock:
                if self._sessions.get(session) is fresh:
                    del self._sessions[session]
            fresh.response = pack_error("ingest aborted")
            fresh.done.set()
            raise
        fresh.response = response
        fresh.done.set()
        return response

    def _ingest(self, vm: str, vdisk: str, body: bytes) -> bytes:
        columns = bytes_to_columns(body)
        n = len(columns)
        with self._stats_lock:
            self.frames_total += 1
        if not n:
            return pack_ok({"accepted": 0})
        if not self._gate.is_enabled_for(vm, vdisk):
            with self._stats_lock:
                self.ignored_records_total += n
            return pack_ok({"accepted": 0, "ignored": n,
                            "reason": "disabled"})
        item = _DataItem((vm, vdisk), columns)
        worker = self._worker_for(item.key)
        if self.backpressure == "drop":
            try:
                worker.queue.put_nowait(item)
            except Full:
                with self._stats_lock:
                    self.dropped_records_total += n
                return pack_ok({"accepted": 0, "dropped": n,
                                "reason": "backpressure"})
        else:
            worker.queue.put(item)
        item.done.wait()
        if item.error is not None:
            raise ProtocolError(item.error)
        with self._stats_lock:
            self.records_total += item.accepted
        return pack_ok({"accepted": item.accepted})

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _handle_control(self, payload: bytes) -> bytes:
        op = unpack_control(payload)
        name = op["op"]
        if self.forward_control is not None \
                and name in _CLUSTER_FORWARDED_OPS:
            # Cluster-wide op landing on one worker: relay to the
            # coordinator and pass its response frame through.
            try:
                return self.forward_control(bytes(payload))
            except (OSError, ValueError) as exc:
                raise ProtocolError(
                    f"cluster coordinator unreachable: {exc}"
                ) from None
        handler = self.control_handlers.get(name)
        if handler is not None:
            return pack_ok(handler(op))
        if name == "ping":
            return pack_ok({"pong": True, "version": 1})
        if name == "hello":
            return pack_ok(self._handle_hello(op))
        if name == "route":
            if self.router is not None:
                return pack_ok(self.router.route_info())
            return pack_ok({"workers": [list(self.address)],
                            "generation": 0})
        if name == "rotate":
            epoch = self.rotate()
            return pack_ok({"epoch": epoch.index,
                            "records": epoch.records,
                            "disks": len(list(epoch.service.collectors()))})
        if name == "snapshot":
            return pack_ok(self.snapshot_dict(
                scope=op.get("scope", "all"),
                epoch=op.get("epoch"),
                aggregate=bool(op.get("aggregate", False)),
            ))
        if name == "enable":
            self._gate.enable(op.get("vm"), op.get("vdisk"))
            return pack_ok({"enabled": True})
        if name == "disable":
            self._gate.disable(op.get("vm"), op.get("vdisk"))
            return pack_ok({"enabled": False})
        if name == "metrics":
            return pack_text(self.openmetrics())
        if name == "info":
            return pack_ok(self.info())
        if name == "verdicts":
            return pack_ok(self.verdicts_dict())
        raise ProtocolError(f"unknown control op {name!r}")

    def _handle_hello(self, op: Dict) -> Dict:
        """Seed (or confirm) a session's retry watermark.

        ``{"op": "hello", "session": s, "seq": n}`` declares "frames
        of session ``s`` up to ``n`` are already acknowledged".  A
        reconnecting client sends it before replaying unacked
        ``DATA_SEQ`` frames so that a *brand-new* server process — a
        cluster worker that just inherited the session after a crash,
        or a restarted daemon — learns the watermark instead of
        re-ingesting a replayed frame it never saw acked (the ack-
        cache race this op exists to close).  On a server that
        already knows the session, the richer state wins: an
        established entry at ``seq >= n`` is left untouched.
        """
        session = op.get("session")
        seq = op.get("seq", 0)
        if not isinstance(session, str) or not session:
            raise ProtocolError("hello needs a non-empty session id")
        if not isinstance(seq, int) or seq < 0:
            raise ProtocolError("hello seq must be an integer >= 0")
        with self._session_lock:
            entry = self._sessions.get(session)
            if entry is None or (entry.response is not None
                                 and entry.seq < seq):
                if seq > 0:
                    seeded = _SessionEntry(seq)
                    # The cached ack for the seeded watermark: a
                    # replay of an already-acknowledged frame is
                    # answered without ingesting (accepted: 0 — the
                    # records were counted when originally acked).
                    seeded.response = pack_ok(
                        {"accepted": 0, "deduplicated": True}
                    )
                    seeded.done.set()
                    self._sessions[session] = seeded
                    self._sessions.move_to_end(session)
                    while len(self._sessions) > _MAX_SESSIONS:
                        oldest = next(iter(self._sessions))
                        if self._sessions[oldest].response is None:
                            break  # never evict an in-flight entry
                        del self._sessions[oldest]
                elif entry is not None:
                    # seq == 0 from a client that knows nothing acked:
                    # nothing to seed, and an existing completed entry
                    # still wins below.
                    return {"session": session, "seq": entry.seq}
                return {"session": session, "seq": seq}
            return {"session": session, "seq": entry.seq}

    # ------------------------------------------------------------------
    # Atomic swap machinery
    # ------------------------------------------------------------------
    def _pause_workers(self) -> List[_Barrier]:
        barriers = []
        for worker in self._workers:
            if not worker.is_alive():
                continue
            barrier = _Barrier()
            worker.queue.put(barrier)
            barriers.append(barrier)
        for barrier in barriers:
            barrier.paused.wait()
        return barriers

    @staticmethod
    def _resume_workers(barriers: List[_Barrier]) -> None:
        for barrier in barriers:
            barrier.resume.set()

    def _seal_all_streams(self) -> List[Tuple[DiskKey, VscsiStatsCollector]]:
        pairs = []
        for worker in self._workers:
            for key, stream in worker.streams.items():
                collector = stream.seal()
                if collector is not None:
                    pairs.append((key, collector))
        return pairs

    def rotate(self) -> Epoch:
        """Seal the current epoch and swap in continuation collectors.

        Workers are parked at a barrier for the O(bins) swap, so
        clients querying sealed epochs never see a torn snapshot and
        ingestion resumes immediately after.
        """
        with self._control_lock:
            if self._closed:
                # A racing close() already sealed the final epoch (and
                # may have closed an owned store) — a late rotation
                # would double-count or write after close.
                raise ValueError("server is closed")
            barriers = self._pause_workers()
            try:
                pairs = self._seal_all_streams()
                epoch = self.ledger.seal(pairs)
            finally:
                self._resume_workers(barriers)
            self._fire_on_seal(epoch)
            return epoch

    def _fire_on_seal(self, epoch: Epoch) -> None:
        """Invoke the seal side effects; neither may kill rotation.

        The online analysis stage reads the epoch first (an injected
        ``analysis.drift`` error degrades to a counter instead of
        failing the rotate).  The cluster hook writes to a pipe whose
        reader is the coordinator — if that end is gone the worker is
        being torn down anyway, so the failure is swallowed rather
        than raised into ``rotate()``; the epoch stays sealed in the
        local ledger either way.
        """
        if self.analyzer is not None:
            try:
                self.analyzer.observe_epoch(epoch)
            except (OSError, ValueError):
                self.analysis_errors_total += 1
        if self._on_seal is None:
            return
        try:
            self._on_seal(epoch)
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    # Queries (also usable in-process, e.g. after close())
    # ------------------------------------------------------------------
    def _current_pairs(self, copy: bool = True):
        """((vm, vdisk), collector) for the live epoch; call paused."""
        pairs = []
        for worker in self._workers:
            for key, stream in worker.streams.items():
                if stream.collector is not None:
                    collector = stream.collector
                    pairs.append((key, collector.copy() if copy
                                  else collector))
        return pairs

    def snapshot_dict(self, scope: str = "all",
                      epoch: Optional[int] = None,
                      aggregate: bool = False) -> Dict:
        """JSON-ready snapshot document.

        ``scope="current"`` — the live (unsealed) epoch only;
        ``scope="epoch"`` — one sealed epoch (by index, default last);
        ``scope="all"`` — exact merge of every epoch plus the live one.
        ``aggregate=True`` adds a host-wide merge across disks.
        """
        if scope == "epoch":
            if not len(self.ledger) and epoch is None:
                raise ProtocolError("no sealed epochs yet")
            if epoch is None:
                target = self.ledger.last
            else:
                try:
                    target = self.ledger.epoch(epoch)
                except KeyError as exc:
                    raise ProtocolError(str(exc)) from None
            service = target.service
            meta: Dict = {"scope": "epoch", "epoch": target.index,
                          "records": target.records}
        elif scope == "current":
            with self._control_lock:
                barriers = self._pause_workers()
                try:
                    pairs = self._current_pairs()
                finally:
                    self._resume_workers(barriers)
            service = HistogramService(window_size=self.window_size,
                                       time_slot_ns=self.time_slot_ns)
            for key, collector in pairs:
                service.adopt(key, collector)
            meta = {"scope": "current", "epoch": len(self.ledger)}
        elif scope == "all":
            with self._control_lock:
                barriers = self._pause_workers()
                try:
                    pairs = self._current_pairs()
                finally:
                    self._resume_workers(barriers)
            service = self.ledger.merged()
            for key, collector in pairs:
                service.adopt(key, collector)
            meta = {"scope": "all", "epochs": len(self.ledger)}
        else:
            raise ProtocolError(f"unknown snapshot scope {scope!r}")
        disks = {
            f"{vm}/{vdisk}": collector.to_dict()
            for (vm, vdisk), collector in service.collectors()
        }
        meta["disks"] = disks
        if aggregate:
            meta["aggregate"] = service.aggregate().to_dict()
        return meta

    def merged_service(self) -> HistogramService:
        """Lifetime merge: every sealed epoch plus the live one."""
        if self._closed or not self._started:
            pairs = self._current_pairs()
        else:
            with self._control_lock:
                barriers = self._pause_workers()
                try:
                    pairs = self._current_pairs()
                finally:
                    self._resume_workers(barriers)
        service = self.ledger.merged()
        for key, collector in pairs:
            service.adopt(key, collector)
        return service

    def verdicts_dict(self) -> Dict:
        """Rolling online-analysis state (the ``verdicts`` control op)."""
        if self.analyzer is None:
            return {"online": False}
        document = self.analyzer.to_dict()
        document["online"] = True
        document["analysis_errors_total"] = self.analysis_errors_total
        return document

    def openmetrics(self) -> str:
        """OpenMetrics text over the lifetime merge + daemon counters."""
        service = self.merged_service()
        with self._stats_lock:
            daemon = {
                "epochs_sealed_total": len(self.ledger),
                "ingest_frames_total": self.frames_total,
                "ingest_records_total": self.records_total,
                "ignored_records_total": self.ignored_records_total,
                "dropped_records_total": self.dropped_records_total,
                "rejected_frames_total": self.rejected_frames_total,
                "duplicate_frames_total": self.duplicate_frames_total,
                "redirected_frames_total": self.redirected_frames_total,
                "persist_failures_total": len(self.ledger.persist_errors),
                "degraded": 1 if self.ledger.degraded else 0,
                "connections_open": len(self._conns),
                "connections_total": self.connections_total,
            }
        verdicts = None
        if self.analyzer is not None:
            daemon["analysis_epochs_total"] = self.analyzer.epochs_seen
            daemon["analysis_errors_total"] = self.analysis_errors_total
            verdicts = self.analyzer.verdicts()
        return render_openmetrics(service.collectors(), daemon,
                                  verdicts=verdicts)

    def info(self) -> Dict:
        """Operational counters and configuration."""
        with self._stats_lock:
            info = {
                "address": list(self.address),
                "direct_address": (list(self.direct_address)
                                   if self.direct_address else None),
                "shards": len(self._workers),
                "backpressure": self.backpressure,
                "enabled": self._gate.enabled,
                "epochs_sealed": len(self.ledger),
                "epoch_records": self.ledger.records,
                "frames_total": self.frames_total,
                "records_total": self.records_total,
                "ignored_records_total": self.ignored_records_total,
                "dropped_records_total": self.dropped_records_total,
                "rejected_frames_total": self.rejected_frames_total,
                "duplicate_frames_total": self.duplicate_frames_total,
                "redirected_frames_total": self.redirected_frames_total,
                "connections_open": len(self._conns),
                "connections_total": self.connections_total,
                "queue_depths": [w.queue.qsize() for w in self._workers],
                "sessions": len(self._sessions),
                "degraded": self.ledger.degraded,
                "persist_errors": list(self.ledger.persist_errors),
            }
        if self.analyzer is not None:
            info["online"] = {
                "epochs_seen": self.analyzer.epochs_seen,
                "verdicts_total": self.analyzer.verdicts_total,
                "drift_events_total": self.analyzer.drift_events_total,
                "analysis_errors_total": self.analysis_errors_total,
            }
        info["ledger"] = self.ledger.to_dict()
        # Full per-epoch snapshots aren't operational data; keep the
        # info document to metadata.
        info["ledger"].pop("retained", None)
        if self.store is not None:
            entry = {"path": str(self.store.path),
                     "owned": self._owns_store,
                     "closed": self.store.closed}
            if not self.store.closed:
                entry["records"] = len(self.store)
                entry["epochs"] = self.store.epochs
            info["store"] = entry
        return info

    def export_json(self) -> str:
        """Lifetime per-disk snapshot as a JSON document."""
        return json.dumps(self.snapshot_dict(scope="all"), indent=2,
                          sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "running" if self._started else "new")
        return (f"<LiveStatsServer {state} {self.host}:{self.port} "
                f"epochs={len(self.ledger)}>")
