"""Replay-to-server publishers: existing traces/workloads as live traffic.

Three sources, one sink:

* :func:`publish_trace_file` — a single ``VSCSITR1`` capture, opened
  zero-copy and streamed for one ``(vm, vdisk)``.
* :func:`publish_shard_dir` — a sharded trace directory (the
  :func:`repro.parallel.write_shards` layout): every segment streams
  under its manifest identity, so a multi-disk capture becomes
  multi-disk live traffic.
* :func:`capture_workload` / :func:`publish_workload` — run one of the
  repo's simulated workloads against the reference testbed with
  per-command tracing on, then stream the capture.  This is how "any
  existing workload" becomes daemon traffic without new plumbing: the
  simulation already emits the same trace records the wire carries.
* :func:`capture_pattern` / :func:`publish_pattern` — same, but driven
  by a named :class:`~repro.workloads.patterns.PatternSpec` preset
  (``seq-read-64k``, ``zipf-write-4k``, ...).  Publishing two different
  patterns back to back for the same disk is the canonical way to
  exercise the online drift detector end to end.

Every publisher sorts each disk's stream into ``(issue, serial)``
order before chunking — the daemon's stream-order requirement.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from ..parallel.trace_io import (
    MANIFEST_NAME,
    TraceColumns,
    load_manifest,
    read_binary_columns,
    records_to_columns,
)
from .client import DEFAULT_FRAME_RECORDS, LiveStatsClient

__all__ = [
    "capture_pattern",
    "capture_workload",
    "publish_pattern",
    "publish_shard_dir",
    "publish_source",
    "publish_trace_file",
    "publish_workload",
]


def _resolve_pattern(pattern):
    """A :class:`PatternSpec`, or a preset name from the suite."""
    from ..workloads.patterns import CHARACTERIZATION_SUITE, PatternSpec
    if isinstance(pattern, PatternSpec):
        return pattern
    for spec in CHARACTERIZATION_SUITE:
        if spec.name == pattern:
            return spec
    names = ", ".join(spec.name for spec in CHARACTERIZATION_SUITE)
    raise ValueError(f"unknown pattern {pattern!r}; choose from: {names}")


def publish_trace_file(client: LiveStatsClient, path, vm: str = "trace",
                       vdisk: str = "scsi0:0",
                       frame_records: int = DEFAULT_FRAME_RECORDS) -> Dict:
    """Stream one binary trace file as live traffic for one disk."""
    columns = read_binary_columns(path)
    return client.publish_columns(vm, vdisk, columns,
                                  frame_records=frame_records)


def publish_shard_dir(client: LiveStatsClient, directory,
                      frame_records: int = DEFAULT_FRAME_RECORDS) -> Dict:
    """Stream every segment of a sharded trace directory.

    Returns combined totals plus a per-disk breakdown.
    """
    directory = Path(directory)
    manifest = load_manifest(directory)
    totals = {"records": 0, "frames": 0, "accepted": 0, "dropped": 0,
              "ignored": 0, "retried": 0, "disks": {}}
    for segment in manifest["segments"]:
        columns = read_binary_columns(directory / segment["file"])
        result = client.publish_columns(segment["vm"], segment["vdisk"],
                                        columns,
                                        frame_records=frame_records)
        totals["disks"][f"{segment['vm']}/{segment['vdisk']}"] = result
        for field in ("records", "frames", "accepted", "dropped", "ignored",
                      "retried"):
            totals[field] += result[field]
    return totals


def capture_workload(seconds: float = 2.0, vm: str = "live-demo",
                     vdisk: str = "scsi0:0", testbed: str = "cx3",
                     read_fraction: float = 0.7,
                     random_fraction: float = 0.6,
                     io_bytes: int = 8192, outstanding: int = 8):
    """Run an Iometer-style workload with tracing on; returns columns.

    The capture point is the simulated vSCSI layer — the same place the
    paper's tool hooks — so the records carry real issue/completion
    timestamps and queue behavior from the storage model underneath.
    """
    from ..experiments.setups import reference_testbed
    from ..sim.engine import seconds as sim_seconds
    from ..workloads.iometer import AccessSpec, IometerWorkload

    bed = reference_testbed(testbed)
    machine = bed.esx.create_vm(vm)
    device = bed.esx.create_vdisk(machine, vdisk, bed.array, 2 * 1024 ** 3)
    buffer = device.start_trace()
    spec = AccessSpec("live capture", io_bytes=io_bytes,
                      read_fraction=read_fraction,
                      random_fraction=random_fraction,
                      outstanding=outstanding)
    IometerWorkload(bed.engine, device, spec).start()
    bed.engine.run(until=sim_seconds(seconds))
    device.stop_trace()
    return records_to_columns(buffer.sorted_by_issue())


def publish_workload(client: LiveStatsClient, seconds: float = 2.0,
                     vm: str = "live-demo", vdisk: str = "scsi0:0",
                     frame_records: int = DEFAULT_FRAME_RECORDS,
                     **workload_kwargs) -> Dict:
    """Capture a simulated workload and stream it as live traffic."""
    columns = capture_workload(seconds=seconds, vm=vm, vdisk=vdisk,
                               **workload_kwargs)
    return client.publish_columns(vm, vdisk, columns,
                                  frame_records=frame_records)


def capture_pattern(pattern, seconds: float = 2.0,
                    vm: str = "live-pattern", vdisk: str = "scsi0:0",
                    testbed: str = "cx3", seed: int = 1234,
                    base_ns: int = 0):
    """Run one LBA-pattern preset with tracing on; returns columns.

    ``pattern`` is a :class:`~repro.workloads.patterns.PatternSpec` or
    a preset name (``"seq-read-64k"``, ``"zipf-write-4k"``, ...).  The
    same ``(pattern, seed, testbed)`` triple captures the same records
    every time, so drift-detection smoke tests are reproducible.

    Every capture's simulation starts at t=0; ``base_ns`` shifts the
    issue/completion timestamps so back-to-back captures for the same
    disk splice into one monotone stream (the daemon's per-disk
    watermark rejects time going backwards).
    """
    import random as _random

    from ..experiments.setups import reference_testbed
    from ..sim.engine import seconds as sim_seconds
    from ..workloads.patterns import PatternWorkload

    spec = _resolve_pattern(pattern)
    bed = reference_testbed(testbed)
    machine = bed.esx.create_vm(vm)
    device = bed.esx.create_vdisk(machine, vdisk, bed.array, 2 * 1024 ** 3)
    buffer = device.start_trace()
    PatternWorkload(bed.engine, device, spec,
                    rng=_random.Random(seed)).start()
    bed.engine.run(until=sim_seconds(seconds))
    device.stop_trace()
    columns = records_to_columns(buffer.sorted_by_issue())
    if base_ns:
        columns = TraceColumns(
            columns.serial,
            [t + base_ns for t in columns.issue_ns],
            [t + base_ns for t in columns.complete_ns],
            columns.lba, columns.nblocks, columns.is_read,
        )
    return columns


def publish_pattern(client: LiveStatsClient, pattern,
                    seconds: float = 2.0, vm: str = "live-pattern",
                    vdisk: str = "scsi0:0",
                    frame_records: int = DEFAULT_FRAME_RECORDS,
                    **capture_kwargs) -> Dict:
    """Capture one pattern preset and stream it as live traffic."""
    columns = capture_pattern(pattern, seconds=seconds, vm=vm,
                              vdisk=vdisk, **capture_kwargs)
    return client.publish_columns(vm, vdisk, columns,
                                  frame_records=frame_records)


def publish_source(client: LiveStatsClient, source,
                   vm: Optional[str] = None, vdisk: Optional[str] = None,
                   frame_records: int = DEFAULT_FRAME_RECORDS,
                   demo_seconds: float = 2.0) -> Dict:
    """Dispatch on a source spec: trace file, shard dir, ``"demo"``,
    or ``"pattern:<name>"``.

    ``source`` may be a path to a ``VSCSITR1`` file, a directory
    containing a shard manifest, the literal string ``"demo"`` to
    synthesize live traffic from a short simulated workload, or
    ``pattern:<name>`` (optionally ``pattern:<name>@<seed>``) to drive
    one of the named LBA-pattern presets.
    """
    if source == "demo":
        return publish_workload(client, seconds=demo_seconds,
                                vm=vm or "live-demo",
                                vdisk=vdisk or "scsi0:0",
                                frame_records=frame_records)
    if isinstance(source, str) and source.startswith("pattern:"):
        name = source[len("pattern:"):]
        seed, base_ns = 1234, 0
        if "+" in name:
            # pattern:<name>[@seed]+<base_seconds> — shift the capture
            # in time so sequential publishes to one disk stay monotone.
            name, _plus, base_text = name.rpartition("+")
            try:
                base_ns = int(float(base_text) * 1_000_000_000)
            except ValueError:
                raise ValueError(
                    f"pattern time base must be a number of seconds, "
                    f"got {base_text!r}"
                ) from None
        if "@" in name:
            name, _at, seed_text = name.rpartition("@")
            try:
                seed = int(seed_text)
            except ValueError:
                raise ValueError(
                    f"pattern seed must be an integer, got {seed_text!r}"
                ) from None
        return publish_pattern(client, name, seconds=demo_seconds,
                               vm=vm or "live-pattern",
                               vdisk=vdisk or "scsi0:0",
                               frame_records=frame_records, seed=seed,
                               base_ns=base_ns)
    path = Path(source)
    if path.is_dir():
        if not (path / MANIFEST_NAME).exists():
            raise ValueError(
                f"{path} is a directory without a {MANIFEST_NAME}; "
                "expected a sharded trace directory"
            )
        return publish_shard_dir(client, path, frame_records=frame_records)
    if not path.exists():
        raise ValueError(f"no such trace source: {path}")
    return publish_trace_file(client, path,
                              vm=vm or path.stem,
                              vdisk=vdisk or "scsi0:0",
                              frame_records=frame_records)
