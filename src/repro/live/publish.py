"""Replay-to-server publishers: existing traces/workloads as live traffic.

Three sources, one sink:

* :func:`publish_trace_file` — a single ``VSCSITR1`` capture, opened
  zero-copy and streamed for one ``(vm, vdisk)``.
* :func:`publish_shard_dir` — a sharded trace directory (the
  :func:`repro.parallel.write_shards` layout): every segment streams
  under its manifest identity, so a multi-disk capture becomes
  multi-disk live traffic.
* :func:`capture_workload` / :func:`publish_workload` — run one of the
  repo's simulated workloads against the reference testbed with
  per-command tracing on, then stream the capture.  This is how "any
  existing workload" becomes daemon traffic without new plumbing: the
  simulation already emits the same trace records the wire carries.

Every publisher sorts each disk's stream into ``(issue, serial)``
order before chunking — the daemon's stream-order requirement.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from ..parallel.trace_io import (
    MANIFEST_NAME,
    load_manifest,
    read_binary_columns,
    records_to_columns,
)
from .client import DEFAULT_FRAME_RECORDS, LiveStatsClient

__all__ = [
    "capture_workload",
    "publish_shard_dir",
    "publish_source",
    "publish_trace_file",
    "publish_workload",
]


def publish_trace_file(client: LiveStatsClient, path, vm: str = "trace",
                       vdisk: str = "scsi0:0",
                       frame_records: int = DEFAULT_FRAME_RECORDS) -> Dict:
    """Stream one binary trace file as live traffic for one disk."""
    columns = read_binary_columns(path)
    return client.publish_columns(vm, vdisk, columns,
                                  frame_records=frame_records)


def publish_shard_dir(client: LiveStatsClient, directory,
                      frame_records: int = DEFAULT_FRAME_RECORDS) -> Dict:
    """Stream every segment of a sharded trace directory.

    Returns combined totals plus a per-disk breakdown.
    """
    directory = Path(directory)
    manifest = load_manifest(directory)
    totals = {"records": 0, "frames": 0, "accepted": 0, "dropped": 0,
              "ignored": 0, "retried": 0, "disks": {}}
    for segment in manifest["segments"]:
        columns = read_binary_columns(directory / segment["file"])
        result = client.publish_columns(segment["vm"], segment["vdisk"],
                                        columns,
                                        frame_records=frame_records)
        totals["disks"][f"{segment['vm']}/{segment['vdisk']}"] = result
        for field in ("records", "frames", "accepted", "dropped", "ignored",
                      "retried"):
            totals[field] += result[field]
    return totals


def capture_workload(seconds: float = 2.0, vm: str = "live-demo",
                     vdisk: str = "scsi0:0", testbed: str = "cx3",
                     read_fraction: float = 0.7,
                     random_fraction: float = 0.6,
                     io_bytes: int = 8192, outstanding: int = 8):
    """Run an Iometer-style workload with tracing on; returns columns.

    The capture point is the simulated vSCSI layer — the same place the
    paper's tool hooks — so the records carry real issue/completion
    timestamps and queue behavior from the storage model underneath.
    """
    from ..experiments.setups import reference_testbed
    from ..sim.engine import seconds as sim_seconds
    from ..workloads.iometer import AccessSpec, IometerWorkload

    bed = reference_testbed(testbed)
    machine = bed.esx.create_vm(vm)
    device = bed.esx.create_vdisk(machine, vdisk, bed.array, 2 * 1024 ** 3)
    buffer = device.start_trace()
    spec = AccessSpec("live capture", io_bytes=io_bytes,
                      read_fraction=read_fraction,
                      random_fraction=random_fraction,
                      outstanding=outstanding)
    IometerWorkload(bed.engine, device, spec).start()
    bed.engine.run(until=sim_seconds(seconds))
    device.stop_trace()
    return records_to_columns(buffer.sorted_by_issue())


def publish_workload(client: LiveStatsClient, seconds: float = 2.0,
                     vm: str = "live-demo", vdisk: str = "scsi0:0",
                     frame_records: int = DEFAULT_FRAME_RECORDS,
                     **workload_kwargs) -> Dict:
    """Capture a simulated workload and stream it as live traffic."""
    columns = capture_workload(seconds=seconds, vm=vm, vdisk=vdisk,
                               **workload_kwargs)
    return client.publish_columns(vm, vdisk, columns,
                                  frame_records=frame_records)


def publish_source(client: LiveStatsClient, source,
                   vm: Optional[str] = None, vdisk: Optional[str] = None,
                   frame_records: int = DEFAULT_FRAME_RECORDS,
                   demo_seconds: float = 2.0) -> Dict:
    """Dispatch on a source spec: trace file, shard dir, or ``"demo"``.

    ``source`` may be a path to a ``VSCSITR1`` file, a directory
    containing a shard manifest, or the literal string ``"demo"`` to
    synthesize live traffic from a short simulated workload.
    """
    if source == "demo":
        return publish_workload(client, seconds=demo_seconds,
                                vm=vm or "live-demo",
                                vdisk=vdisk or "scsi0:0",
                                frame_records=frame_records)
    path = Path(source)
    if path.is_dir():
        if not (path / MANIFEST_NAME).exists():
            raise ValueError(
                f"{path} is a directory without a {MANIFEST_NAME}; "
                "expected a sharded trace directory"
            )
        return publish_shard_dir(client, path, frame_records=frame_records)
    if not path.exists():
        raise ValueError(f"no such trace source: {path}")
    return publish_trace_file(client, path,
                              vm=vm or path.stem,
                              vdisk=vdisk or "scsi0:0",
                              frame_records=frame_records)
