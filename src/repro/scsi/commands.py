"""A small SCSI block-command model.

The hypervisor's emulation layer presents an LSI Logic / Bus Logic
SCSI device to the guest (§2); the guest driver sends Command
Descriptor Blocks (CDBs).  The characterization service only needs the
block-transfer subset — READ/WRITE with an LBA and a transfer length —
but we model the CDB encodings for the common variants so the vSCSI
layer parses commands the way a real emulation layer does, including
the 6/10/16-byte addressing limits.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

__all__ = ["OpCode", "Cdb", "build_rw_cdb", "parse_cdb", "SECTOR_BYTES"]

#: Bytes per logical block throughout the reproduction.
SECTOR_BYTES = 512


class OpCode(enum.IntEnum):
    """SCSI operation codes used by the block path."""

    READ_6 = 0x08
    WRITE_6 = 0x0A
    READ_10 = 0x28
    WRITE_10 = 0x2A
    READ_16 = 0x88
    WRITE_16 = 0x8A

    @property
    def is_read(self) -> bool:
        return self in (OpCode.READ_6, OpCode.READ_10, OpCode.READ_16)

    @property
    def is_write(self) -> bool:
        return self in (OpCode.WRITE_6, OpCode.WRITE_10, OpCode.WRITE_16)


@dataclass(frozen=True)
class Cdb:
    """A parsed Command Descriptor Block for a block transfer."""

    opcode: OpCode
    lba: int
    nblocks: int

    @property
    def is_read(self) -> bool:
        return self.opcode.is_read

    @property
    def length_bytes(self) -> int:
        return self.nblocks * SECTOR_BYTES


# Addressing limits per CDB family.
_LIMITS = {
    6: (1 << 21, 1 << 8),
    10: (1 << 32, 1 << 16),
    16: (1 << 64, 1 << 32),
}


def build_rw_cdb(is_read: bool, lba: int, nblocks: int) -> bytes:
    """Encode a READ/WRITE CDB, picking the smallest family that fits.

    Raises :class:`ValueError` for out-of-range parameters — the same
    validation the emulation layer would apply before accepting the
    command.
    """
    if lba < 0:
        raise ValueError(f"negative LBA {lba}")
    if nblocks < 1:
        raise ValueError(f"transfer length must be >= 1 block, got {nblocks}")

    if lba < _LIMITS[6][0] and 0 < nblocks < _LIMITS[6][1]:
        opcode = OpCode.READ_6 if is_read else OpCode.WRITE_6
        # 6-byte: opcode, LBA[20:16] | LUN bits, LBA[15:8], LBA[7:0],
        # transfer length, control.
        return bytes(
            [
                opcode,
                (lba >> 16) & 0x1F,
                (lba >> 8) & 0xFF,
                lba & 0xFF,
                nblocks & 0xFF,
                0,
            ]
        )
    if lba < _LIMITS[10][0] and nblocks < _LIMITS[10][1]:
        opcode = OpCode.READ_10 if is_read else OpCode.WRITE_10
        return struct.pack(">BBIBHB", opcode, 0, lba, 0, nblocks, 0)
    if lba < _LIMITS[16][0] and nblocks < _LIMITS[16][1]:
        opcode = OpCode.READ_16 if is_read else OpCode.WRITE_16
        return struct.pack(">BBQIBB", opcode, 0, lba, nblocks, 0, 0)
    raise ValueError(f"transfer does not fit any CDB family: lba={lba} nblocks={nblocks}")


def parse_cdb(cdb: bytes) -> Cdb:
    """Decode a CDB built by :func:`build_rw_cdb` (or a compatible one)."""
    if not cdb:
        raise ValueError("empty CDB")
    opcode = OpCode(cdb[0])
    if opcode in (OpCode.READ_6, OpCode.WRITE_6):
        if len(cdb) != 6:
            raise ValueError(f"6-byte CDB has length {len(cdb)}")
        lba = ((cdb[1] & 0x1F) << 16) | (cdb[2] << 8) | cdb[3]
        nblocks = cdb[4] or 256  # 0 means 256 in the 6-byte family
        return Cdb(opcode, lba, nblocks)
    if opcode in (OpCode.READ_10, OpCode.WRITE_10):
        if len(cdb) != 10:
            raise ValueError(f"10-byte CDB has length {len(cdb)}")
        _, _, lba, _, nblocks, _ = struct.unpack(">BBIBHB", cdb)
        return Cdb(opcode, lba, nblocks)
    if opcode in (OpCode.READ_16, OpCode.WRITE_16):
        if len(cdb) != 16:
            raise ValueError(f"16-byte CDB has length {len(cdb)}")
        _, _, lba, nblocks, _, _ = struct.unpack(">BBQIBB", cdb)
        return Cdb(opcode, lba, nblocks)
    raise ValueError(f"unsupported opcode {opcode!r}")  # pragma: no cover
