"""SCSI protocol substrate: CDB model, in-flight requests, queues."""

from .commands import Cdb, OpCode, SECTOR_BYTES, build_rw_cdb, parse_cdb
from .queue import PendingQueue
from .request import ScsiRequest

__all__ = [
    "Cdb",
    "OpCode",
    "SECTOR_BYTES",
    "build_rw_cdb",
    "parse_cdb",
    "PendingQueue",
    "ScsiRequest",
]
