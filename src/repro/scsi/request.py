"""In-flight SCSI request objects.

A :class:`ScsiRequest` is the unit that travels from the guest's
driver through the vSCSI emulation layer down to the storage model and
back.  It carries the timestamps the characterization service needs —
issue time at the vSCSI layer and completion time — plus an optional
completion callback chain.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from .commands import SECTOR_BYTES

__all__ = ["ScsiRequest"]

_serials = itertools.count()


class ScsiRequest:
    """One block-transfer command in flight.

    Parameters
    ----------
    is_read:
        Direction of the transfer.
    lba:
        Starting logical block (512-byte units) in the *virtual disk*
        address space.
    nblocks:
        Transfer length in logical blocks (>= 1).
    tag:
        Optional free-form label (workload / stream attribution in
        traces and tests).
    """

    __slots__ = (
        "serial",
        "is_read",
        "lba",
        "nblocks",
        "tag",
        "issue_ns",
        "complete_ns",
        "_callbacks",
    )

    def __init__(self, is_read: bool, lba: int, nblocks: int, tag: str = ""):
        if lba < 0:
            raise ValueError(f"negative LBA {lba}")
        if nblocks < 1:
            raise ValueError(f"nblocks must be >= 1, got {nblocks}")
        self.serial = next(_serials)
        self.is_read = bool(is_read)
        self.lba = int(lba)
        self.nblocks = int(nblocks)
        self.tag = tag
        self.issue_ns: Optional[int] = None
        self.complete_ns: Optional[int] = None
        self._callbacks: List[Callable[["ScsiRequest"], None]] = []

    # ------------------------------------------------------------------
    @property
    def length_bytes(self) -> int:
        """Transfer length in bytes."""
        return self.nblocks * SECTOR_BYTES

    @property
    def last_block(self) -> int:
        """Last logical block touched (inclusive)."""
        return self.lba + self.nblocks - 1

    @property
    def completed(self) -> bool:
        return self.complete_ns is not None

    @property
    def latency_ns(self) -> int:
        """Issue-to-completion latency; only valid once completed."""
        if self.issue_ns is None or self.complete_ns is None:
            raise ValueError("request has not completed")
        return self.complete_ns - self.issue_ns

    # ------------------------------------------------------------------
    def on_complete(self, callback: Callable[["ScsiRequest"], None]) -> None:
        """Register a completion callback (fired in registration order)."""
        if self.completed:
            raise ValueError("cannot register callback on a completed request")
        self._callbacks.append(callback)

    def mark_issued(self, time_ns: int) -> None:
        """Stamp the vSCSI-layer issue time."""
        if self.issue_ns is not None:
            raise ValueError(f"request {self.serial} issued twice")
        self.issue_ns = time_ns

    def mark_completed(self, time_ns: int) -> None:
        """Stamp completion and fire callbacks."""
        if self.issue_ns is None:
            raise ValueError(f"request {self.serial} completed before issue")
        if self.complete_ns is not None:
            raise ValueError(f"request {self.serial} completed twice")
        self.complete_ns = time_ns
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = "R" if self.is_read else "W"
        return (
            f"<ScsiRequest #{self.serial} {op} lba={self.lba} "
            f"nblocks={self.nblocks}>"
        )
