"""Per-virtual-disk pending-request queue.

§2: "ESX Server maintains a queue of pending requests per virtual
machine for each target SCSI device."  The queue tracks which commands
have been issued to the backing device but not yet completed — the
*outstanding I/O* count sampled by the characterization service at
every arrival (§3.3) — and optionally throttles concurrency to a
device queue depth, queueing the excess.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from .request import ScsiRequest

__all__ = ["PendingQueue"]


class PendingQueue:
    """Outstanding-command accounting with an optional depth limit.

    Parameters
    ----------
    depth_limit:
        Maximum commands in flight at the device; further submissions
        wait in FIFO order.  ``None`` means unlimited (the vSCSI layer
        itself does not throttle; limits usually live in the guest
        driver or the physical HBA).
    """

    def __init__(self, depth_limit: Optional[int] = None):
        if depth_limit is not None and depth_limit < 1:
            raise ValueError(f"depth_limit must be >= 1, got {depth_limit}")
        self.depth_limit = depth_limit
        self._inflight: Dict[int, ScsiRequest] = {}
        self._waiting: Deque[ScsiRequest] = deque()
        self._dispatch: Optional[Callable[[ScsiRequest], None]] = None
        # Lifetime counters.
        self.submitted = 0
        self.dispatched = 0
        self.completed = 0
        self.max_outstanding = 0

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Commands issued to the device and not yet completed."""
        return len(self._inflight)

    @property
    def queued(self) -> int:
        """Commands waiting for a device slot."""
        return len(self._waiting)

    def set_dispatcher(self, dispatch: Callable[[ScsiRequest], None]) -> None:
        """Install the function that sends a request to the device."""
        self._dispatch = dispatch

    # ------------------------------------------------------------------
    def submit(self, request: ScsiRequest) -> None:
        """Accept a request; dispatch now or queue behind the limit."""
        if self._dispatch is None:
            raise RuntimeError("PendingQueue has no dispatcher installed")
        self.submitted += 1
        if self.depth_limit is not None and self.outstanding >= self.depth_limit:
            self._waiting.append(request)
            return
        self._send(request)

    def complete(self, request: ScsiRequest) -> None:
        """Notify that the device finished ``request``; refill the slot."""
        if request.serial not in self._inflight:
            raise KeyError(f"request {request.serial} is not in flight")
        del self._inflight[request.serial]
        self.completed += 1
        if self._waiting and (
            self.depth_limit is None or self.outstanding < self.depth_limit
        ):
            self._send(self._waiting.popleft())

    def _send(self, request: ScsiRequest) -> None:
        self._inflight[request.serial] = request
        self.dispatched += 1
        if self.outstanding > self.max_outstanding:
            self.max_outstanding = self.outstanding
        assert self._dispatch is not None
        self._dispatch(request)

    def drain_check(self) -> bool:
        """True when nothing is in flight or waiting."""
        return not self._inflight and not self._waiting

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PendingQueue inflight={self.outstanding} queued={self.queued} "
            f"limit={self.depth_limit}>"
        )
