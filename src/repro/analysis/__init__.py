"""Post-processing, characterization, and the paper's baselines."""

from .characterize import (
    WorkloadProfile,
    characterize,
    describe,
    interleaved_stream_signal,
    is_seekless,
    random_fraction,
    reverse_fraction,
    sequential_fraction,
    stream_count_estimate,
)
from .compare import (
    MetricComparison,
    compare_collectors,
    mode_shift,
    render_comparison,
    total_variation_distance,
)
from .fingerprint import Fingerprint, fingerprint
from .online import (
    DriftConfig,
    EpochVerdict,
    OnlineAnalyzer,
    format_verdict,
    match_personality,
)
from .offline import (
    exact_percentile,
    histogram_space_bytes,
    latency_percentiles,
    reuse_distances,
    seek_latency_correlation,
    trace_space_bytes,
)
from .rebin import power_of_two_scheme, rebin
from .recommend import (
    Recommendation,
    WorkloadClass,
    categorize,
    recommend,
)
from .summary import workload_report

__all__ = [
    "WorkloadProfile",
    "characterize",
    "describe",
    "interleaved_stream_signal",
    "is_seekless",
    "random_fraction",
    "reverse_fraction",
    "sequential_fraction",
    "stream_count_estimate",
    "DriftConfig",
    "EpochVerdict",
    "OnlineAnalyzer",
    "format_verdict",
    "match_personality",
    "MetricComparison",
    "compare_collectors",
    "mode_shift",
    "render_comparison",
    "total_variation_distance",
    "Fingerprint",
    "fingerprint",
    "exact_percentile",
    "histogram_space_bytes",
    "latency_percentiles",
    "reuse_distances",
    "seek_latency_correlation",
    "trace_space_bytes",
    "power_of_two_scheme",
    "rebin",
    "Recommendation",
    "WorkloadClass",
    "categorize",
    "recommend",
    "workload_report",
]
