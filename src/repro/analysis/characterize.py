"""Derive workload properties from a collector — what an administrator
reads off the histograms.

§4 walks through exactly these judgements: "the OLTP workload is quite
random (spikes at the right and left edges of graph)", "a large
proportion of the writes are sequential", "the workload is almost
exclusively 8K", "PostgreSQL is always issuing around 32 writes
simultaneously".  This module turns those readings into functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.collector import VscsiStatsCollector
from ..core.histogram import Histogram

__all__ = [
    "sequential_fraction",
    "random_fraction",
    "reverse_fraction",
    "interleaved_stream_signal",
    "stream_count_estimate",
    "is_seekless",
    "WorkloadProfile",
    "characterize",
    "describe",
]

#: Seek distances in (0, 2] sectors — the bin that holds distance 1,
#: i.e. back-to-back contiguous commands (§3.1: "sequential I/Os will
#: result in a histogram whose peak is centered around 1").
_SEQUENTIAL_LOW, _SEQUENTIAL_HIGH = 0, 2
#: |distance| > 50 000 sectors — the spikes at the edges of the
#: paper's seek graphs that mark a random workload.
_RANDOM_THRESHOLD = 50_000


def sequential_fraction(seek: Histogram) -> float:
    """Fraction of commands that continued the previous command."""
    return seek.fraction_in(_SEQUENTIAL_LOW, _SEQUENTIAL_HIGH)


def random_fraction(seek: Histogram) -> float:
    """Fraction of commands that seeked beyond +/-50k sectors."""
    if not seek.count:
        return 0.0
    edge = 0
    for index, count in enumerate(seek.counts):
        if not count:
            continue
        low, high = seek.scheme.bounds(index)
        if high <= -_RANDOM_THRESHOLD or low >= _RANDOM_THRESHOLD:
            edge += count
    return edge / seek.count


def reverse_fraction(seek: Histogram) -> float:
    """Fraction of strictly negative seeks — reverse-scan detection,
    which §3.1 calls "really important" since reverse scans are slow."""
    if not seek.count:
        return 0.0
    negative = 0
    for index, count in enumerate(seek.counts):
        if not count:
            continue
        _low, high = seek.scheme.bounds(index)
        if high <= 0:
            negative += count
    return negative / seek.count


def is_seekless(collector: VscsiStatsCollector) -> bool:
    """Whether the vdisk's backing device reports flash telemetry.

    The seek-distance histograms are recorded at the vSCSI layer from
    LBA deltas, so they exist for every backend — but on a seekless
    device a "seek" is just an address delta, with no head movement
    behind it.  SSD backends surface per-write write-amplification
    samples (and GC pauses) through the ``write_amp_pct`` /
    ``gc_pause_us`` families; their presence marks the collector as
    flash-backed.  A read-only stream on an SSD produces no WA samples
    and is not auto-detected — callers that know the backend can pass
    ``seekless=True`` to :func:`characterize` explicitly.
    """
    wa = collector.write_amp_pct
    gc = collector.gc_pause_us
    return bool(
        wa.reads.count or wa.writes.count
        or gc.reads.count or gc.writes.count
    )


def interleaved_stream_signal(collector: VscsiStatsCollector) -> float:
    """How much sequentiality the look-behind window recovers (§3.1).

    Returns ``windowed_sequential - plain_sequential``: near zero for
    a single stream or pure randomness; strongly positive when
    multiple sequential streams are interleaved (the plain histogram
    sees inter-stream jumps, the min-of-last-N histogram sees each
    stream's continuity).
    """
    plain = sequential_fraction(collector.seek_distance.all)
    windowed = sequential_fraction(collector.seek_distance_windowed.all)
    return windowed - plain


#: Windowed sequentiality below this is noise, not streams.
_STREAM_SIGNAL_FLOOR = 0.3


def stream_count_estimate(collector: VscsiStatsCollector) -> int:
    """Estimate how many sequential streams are interleaved (§3.1).

    When ``k`` sequential streams interleave, the plain seek histogram
    only scores a continuation when two commands from the *same*
    stream happen to be adjacent — about ``1/k`` of the time under
    random interleaving — while the look-behind window recovers each
    stream's continuity.  The ratio ``windowed / plain`` therefore
    estimates ``k``.  Returns 0 when even the windowed histogram shows
    no meaningful sequentiality (the workload is random, not
    interleaved), 1 for a single stream, and saturates at the
    collector's window size: a strict round-robin of more streams
    drives the plain fraction to zero, which is indistinguishable
    beyond the window's reach.
    """
    windowed = sequential_fraction(collector.seek_distance_windowed.all)
    if windowed < _STREAM_SIGNAL_FLOOR:
        return 0
    plain = sequential_fraction(collector.seek_distance.all)
    window = collector.window_size
    floor = windowed / (window + 1)
    ratio = windowed / max(plain, floor)
    return max(1, min(window, int(round(ratio))))


@dataclass(frozen=True)
class WorkloadProfile:
    """Scalar summary of a characterized workload."""

    commands: int
    read_fraction: float
    dominant_io_size: str
    dominant_io_size_reads: Optional[str]
    dominant_io_size_writes: Optional[str]
    sequential: float
    sequential_reads: float
    sequential_writes: float
    random: float
    reverse: float
    interleaved_signal: float
    typical_outstanding: str
    typical_outstanding_writes: Optional[str]
    typical_latency_us: str
    typical_interarrival_us: str
    burstiness: float  # fraction of interarrivals <= 100 us
    #: Backed by a device with no head: sequential/random/reverse are
    #: LBA-locality readings, not mechanical seek costs.
    seekless: bool = False


def characterize(collector: VscsiStatsCollector,
                 seekless: Optional[bool] = None) -> WorkloadProfile:
    """Summarize a collector into a :class:`WorkloadProfile`.

    ``seekless`` overrides backend detection; the default ``None``
    auto-detects via :func:`is_seekless`.
    """
    if not collector.commands:
        raise ValueError("collector has observed no commands")
    io = collector.io_length
    seek = collector.seek_distance
    if seekless is None:
        seekless = is_seekless(collector)
    return WorkloadProfile(
        commands=collector.commands,
        read_fraction=collector.read_fraction,
        dominant_io_size=io.all.mode_label(),
        dominant_io_size_reads=(
            io.reads.mode_label() if io.reads.count else None
        ),
        dominant_io_size_writes=(
            io.writes.mode_label() if io.writes.count else None
        ),
        sequential=sequential_fraction(seek.all),
        sequential_reads=sequential_fraction(seek.reads),
        sequential_writes=sequential_fraction(seek.writes),
        random=random_fraction(seek.all),
        reverse=reverse_fraction(seek.all),
        interleaved_signal=interleaved_stream_signal(collector),
        typical_outstanding=collector.outstanding.all.mode_label(),
        typical_outstanding_writes=(
            collector.outstanding.writes.mode_label()
            if collector.outstanding.writes.count
            else None
        ),
        typical_latency_us=(
            collector.latency_us.all.mode_label()
            if collector.latency_us.all.count
            else "n/a"
        ),
        typical_interarrival_us=(
            collector.interarrival_us.all.mode_label()
            if collector.interarrival_us.all.count
            else "n/a"
        ),
        burstiness=collector.interarrival_us.all.fraction_in(
            float("-inf"), 100
        ),
        seekless=seekless,
    )


def describe(profile: WorkloadProfile) -> str:
    """Render a profile the way an administrator would state it."""
    lines = [
        f"{profile.commands} commands, "
        f"{profile.read_fraction:.0%} reads / "
        f"{1 - profile.read_fraction:.0%} writes",
        f"dominant I/O size: {profile.dominant_io_size} bytes"
        + (
            f" (reads: {profile.dominant_io_size_reads}, "
            f"writes: {profile.dominant_io_size_writes})"
            if profile.dominant_io_size_reads
            and profile.dominant_io_size_writes
            else ""
        ),
        (
            ("LBA locality" if profile.seekless else "sequential")
            + f": {profile.sequential:.0%} overall "
            f"(reads {profile.sequential_reads:.0%}, "
            f"writes {profile.sequential_writes:.0%}); "
            f"random (edge seeks): {profile.random:.0%}; "
            f"reverse: {profile.reverse:.0%}"
            + (
                " [seekless device: distances are address deltas, "
                "not head movement]"
                if profile.seekless
                else ""
            )
        ),
        f"typical outstanding I/Os: {profile.typical_outstanding}"
        + (
            f" (writes: {profile.typical_outstanding_writes})"
            if profile.typical_outstanding_writes
            else ""
        ),
        f"typical latency bin: {profile.typical_latency_us} us",
        f"typical interarrival bin: {profile.typical_interarrival_us} us"
        + (
            f" ({profile.burstiness:.0%} of arrivals within 100 us: "
            "bursty issue pattern)"
            if profile.burstiness > 0.5
            else ""
        ),
    ]
    if profile.interleaved_signal > 0.2:
        lines.append(
            "look-behind window recovers "
            f"{profile.interleaved_signal:.0%} sequentiality: "
            "multiple interleaved sequential streams are likely"
        )
    return "\n".join(lines)
