"""Bin-compression post-processing.

§4: the collection-time bins are deliberately irregular to preserve
"special" sizes, because "once inserted into the histogram, we'll
lose that precise information.  A post-processing script could easily
compress ranges back into powers of two or some other desired
scheme."  This module is that script.

Compression is exact when every source bin nests inside one target
bin (true for compressing the paper's schemes to powers of two); the
function refuses lossy mappings unless asked to force them.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.bins import BinScheme
from ..core.histogram import Histogram

__all__ = ["power_of_two_scheme", "rebin"]


def power_of_two_scheme(source: BinScheme,
                        name: Optional[str] = None) -> BinScheme:
    """A power-of-two scheme spanning the same range as ``source``.

    Edges are all powers of two between the smallest and largest
    positive source edges; negative source edges get mirrored negative
    powers of two (for the signed seek-distance scheme), and a zero
    edge is kept if the source has one.
    """
    positives = sorted({e for e in source.edges if e > 0})
    negatives = sorted({e for e in source.edges if e < 0})
    has_zero = 0 in source.edges
    edges: List[int] = []
    if negatives:
        low = -negatives[0]   # largest magnitude
        high = -negatives[-1]  # smallest magnitude
        power = 1
        while power < high:
            power *= 2
        mirror: List[int] = []
        while power <= low:
            mirror.append(-power)
            power *= 2
        if not mirror or -mirror[-1] < low:
            mirror.append(-power)
        edges.extend(sorted(mirror))
    if has_zero:
        edges.append(0)
    if positives:
        power = 1
        while power < positives[0]:
            power *= 2
        while power < positives[-1]:
            edges.append(power)
            power *= 2
        edges.append(power)
    return BinScheme(
        name if name is not None else f"{source.name}_pow2",
        edges,
        unit=source.unit,
    )


def rebin(hist: Histogram, target: BinScheme,
          force: bool = False) -> Histogram:
    """Re-express a histogram on a coarser scheme, preserving counts.

    Each source bin ``(low, high]`` must nest inside one target bin;
    otherwise the mapping would be lossy and a :class:`ValueError` is
    raised (``force=True`` instead assigns by the source bin's upper
    edge).  The total count is always preserved — a property test
    asserts it.
    """
    result = Histogram(target, name=hist.name)
    for index, count in enumerate(hist.counts):
        if not count:
            continue
        low, high = hist.scheme.bounds(index)
        if high == float("inf"):
            anchor = low  # overflow: classify by its lower edge
            target_index = (
                len(target.edges)
                if anchor >= target.edges[-1]
                else target.index_for(anchor)
            )
        else:
            target_index = target.index_for(high)
            if not force:
                t_low, t_high = target.bounds(target_index)
                if low < t_low or high > t_high:
                    raise ValueError(
                        f"source bin ({low}, {high}] straddles target "
                        f"bin ({t_low}, {t_high}]; pass force=True to "
                        "rebin lossily"
                    )
        result.counts[target_index] += count
    result.count = hist.count
    result.total = hist.total
    result.min = hist.min
    result.max = hist.max
    return result
