"""Scalar workload fingerprint — the Moilanen [13] baseline.

§6 contrasts the paper against Moilanen's genetic-library work, which
"tracks read/write ratios, average size and infers an average seek
distance" as single numbers.  The fingerprint is implemented here both
as a usable summary *and* as the baseline the histograms beat: the
test suite constructs bimodal workloads whose fingerprints are
identical while their histograms differ — the paper's §3 argument
that "multimodal behaviors are easily identified by plotting histogram
data but are obfuscated by a mean".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.collector import VscsiStatsCollector

__all__ = ["Fingerprint", "fingerprint"]


@dataclass(frozen=True)
class Fingerprint:
    """Moilanen-style scalar summary of a workload."""

    read_write_ratio: float      # reads / writes; math.inf when writes == 0
    mean_io_bytes: float
    mean_seek_distance: float    # signed mean, sectors
    mean_outstanding: float

    def close_to(self, other: "Fingerprint", rtol: float = 0.05) -> bool:
        """Whether two fingerprints are indistinguishable at ``rtol``.

        Used to demonstrate fingerprint collisions: workloads that a
        scalar summary cannot tell apart.
        """
        def close(x: float, y: float) -> bool:
            if math.isinf(x) or math.isinf(y):
                return x == y
            scale = max(abs(x), abs(y), 1e-9)
            return abs(x - y) / scale <= rtol

        return (
            close(self.read_write_ratio, other.read_write_ratio)
            and close(self.mean_io_bytes, other.mean_io_bytes)
            and close(self.mean_seek_distance, other.mean_seek_distance)
            and close(self.mean_outstanding, other.mean_outstanding)
        )


def fingerprint(collector: VscsiStatsCollector) -> Fingerprint:
    """Compute the scalar fingerprint of an observed workload."""
    if not collector.commands:
        raise ValueError("collector has observed no commands")
    writes = collector.write_commands
    # All-read workloads get the scale-free math.inf sentinel: the old
    # float(read_commands) fallback made two identical read-only
    # workloads of different lengths compare as different.
    ratio = collector.read_commands / writes if writes else math.inf
    return Fingerprint(
        read_write_ratio=ratio,
        mean_io_bytes=collector.io_length.all.mean,
        mean_seek_distance=collector.seek_distance.all.mean,
        mean_outstanding=collector.outstanding.all.mean,
    )
