"""Offline trace analysis — the O(n) baseline and the analyses the
online service cannot do.

§3 frames the design as a trade: a trace costs O(n) space but allows
arbitrary post-processing; online histograms cost O(m) but answer only
the precomputed questions.  §3.6 names the questions that need traces:
metric correlations (e.g. seek distance vs. latency) and temporal
locality (reuse distance).  All of those are implemented here over
:class:`~repro.core.tracing.TraceRecord` streams, alongside the space
accounting that makes the O(n)-vs-O(m) comparison concrete.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.collector import VscsiStatsCollector
from ..core.tracing import TraceRecord

__all__ = [
    "exact_percentile",
    "latency_percentiles",
    "seek_latency_correlation",
    "seek_latency_histogram2d",
    "reuse_distances",
    "trace_space_bytes",
    "histogram_space_bytes",
]


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Exact ``q``-quantile (nearest-rank) of a value list."""
    if not values:
        raise ValueError("no values")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def latency_percentiles(records: Iterable[TraceRecord],
                        quantiles: Sequence[float] = (0.5, 0.9, 0.99),
                        ) -> Dict[float, float]:
    """Exact latency percentiles in microseconds — something the
    binned online histogram can only bound, not pinpoint."""
    latencies = [r.latency_ns / 1_000 for r in records]
    return {q: exact_percentile(latencies, q) for q in quantiles}


def seek_latency_correlation(records: Iterable[TraceRecord]) -> float:
    """Pearson correlation of |seek distance| with latency (§3.6's
    example of an analysis "possible ... using SCSI traces").

    Records are taken in issue order; the first command (no previous
    position) is skipped.  Returns 0.0 when there is no variance.
    """
    ordered = sorted(records, key=lambda r: (r.issue_ns, r.serial))
    seeks: List[float] = []
    latencies: List[float] = []
    previous_end: Optional[int] = None
    for record in ordered:
        if previous_end is not None:
            seeks.append(abs(record.lba - previous_end))
            latencies.append(record.latency_ns)
        previous_end = record.last_block
    if len(seeks) < 2:
        return 0.0
    n = len(seeks)
    mean_s = sum(seeks) / n
    mean_l = sum(latencies) / n
    cov = sum((s - mean_s) * (l - mean_l) for s, l in zip(seeks, latencies))
    var_s = sum((s - mean_s) ** 2 for s in seeks)
    var_l = sum((l - mean_l) ** 2 for l in latencies)
    if var_s == 0 or var_l == 0:
        return 0.0
    return cov / math.sqrt(var_s * var_l)


def seek_latency_histogram2d(records: Iterable[TraceRecord]):
    """Joint (seek-distance x latency) histogram from a trace.

    §3.6: "it might be interesting to correlate seek distance with
    latency.  Such correlations are possible using online techniques
    including with the use of 2d histograms.  Our current work only
    deals with 1d histograms ... Such analysis, for now, requires
    using SCSI traces."  This is that trace-side analysis: a matrix of
    counts over the paper's seek-distance bins (rows) and latency bins
    (columns).
    """
    from ..core.bins import LATENCY_US_BINS, SEEK_DISTANCE_BINS

    rows = SEEK_DISTANCE_BINS.num_bins
    cols = LATENCY_US_BINS.num_bins
    matrix = [[0] * cols for _ in range(rows)]
    previous_end: Optional[int] = None
    for record in sorted(records, key=lambda r: (r.issue_ns, r.serial)):
        if previous_end is not None:
            seek = record.lba - previous_end
            latency_us = record.latency_ns // 1_000
            matrix[SEEK_DISTANCE_BINS.index_for(seek)][
                LATENCY_US_BINS.index_for(latency_us)
            ] += 1
        previous_end = record.last_block
    return matrix


def reuse_distances(records: Iterable[TraceRecord],
                    block_granularity: int = 16) -> List[int]:
    """Temporal locality: per-access reuse distance in distinct blocks.

    §3.6: "online temporal locality estimation is difficult to obtain
    in constant time and is not implemented" — it needs the trace.
    Accesses are reduced to ``block_granularity``-sector chunks; for
    each re-access, the number of *distinct* chunks touched since the
    previous access to the same chunk is recorded (LRU stack
    distance).  First-touches are omitted.
    """
    ordered = sorted(records, key=lambda r: (r.issue_ns, r.serial))
    # LRU stack as an ordered dict: chunk -> None, most recent last.
    stack: Dict[int, None] = {}
    distances: List[int] = []
    for record in ordered:
        first_chunk = record.lba // block_granularity
        last_chunk = record.last_block // block_granularity
        for chunk in range(first_chunk, last_chunk + 1):
            if chunk in stack:
                # Stack distance = number of distinct chunks above it.
                depth = 0
                for other in reversed(stack):
                    if other == chunk:
                        break
                    depth += 1
                distances.append(depth)
                del stack[chunk]
            stack[chunk] = None
    return distances


# ----------------------------------------------------------------------
# Space accounting: the O(n) vs O(m) argument made concrete
# ----------------------------------------------------------------------
#: Bytes per trace record in the binary format (see core.tracing).
TRACE_RECORD_BYTES = 40


def trace_space_bytes(n_commands: int) -> int:
    """Storage for a binary trace of ``n_commands`` — O(n)."""
    return 8 + n_commands * TRACE_RECORD_BYTES  # magic + records


def histogram_space_bytes(collector: VscsiStatsCollector) -> int:
    """Storage for the full online histogram set — O(m), independent
    of command count.  Counted as 8 bytes per bin counter plus the
    fixed per-collector scalars, matching how the in-kernel service
    would size its arrays."""
    bins = sum(
        family.all.scheme.num_bins * 3  # all / reads / writes
        for family in collector.families().values()
    )
    scalars = 16  # last-block, last-arrival, counters, min/max etc.
    window = 16   # the look-behind ring
    return 8 * (bins + scalars + window)
