"""Online fingerprinting and drift detection over sealed epochs.

§6 of the paper pitches *online* characterization that drives
decisions while the workload runs; this module is that stage.  An
:class:`OnlineAnalyzer` consumes every sealed epoch from the live
daemon (or cluster coordinator, or a store tail) and emits one
:class:`EpochVerdict` per vdisk per epoch:

* a coarse classification (:func:`repro.analysis.recommend.categorize`)
  plus the §3.1 readings — sequential/random fractions, the
  interleaved-stream count recovered by the look-behind window, and
  flash awareness via :func:`~repro.analysis.characterize.is_seekless`;
* a **drift score** against the disk's compacted history: the maximum
  total-variation distance across the configured histogram families
  between this epoch's distributions and the baseline's.  Drift uses
  hysteresis — only ``hysteresis_k`` *consecutive* epochs over the
  threshold fire a drift event — so one bursty epoch cannot page an
  operator.  While a disk is over threshold the baseline is frozen
  (suspect epochs are not merged in), so a real personality switch
  cannot dilute its way past detection; when the event fires the
  baseline is rebased to the new personality and the streak resets;
* the nearest **personality** from
  :data:`repro.workloads.patterns.CHARACTERIZATION_SUITE`, named in
  the verdict so a drift event reads "zipf-write-4k -> seq-read-64k",
  not just a number;
* **recommendation deltas**: which
  :func:`~repro.analysis.recommend.recommend` rules appeared or
  disappeared relative to the previous verdict — the actionable edge
  of a drift event.

Everything here is a pure function of the epoch collector sequence —
no clocks, no randomness — so verdicts computed live on a daemon are
*identical* to verdicts recomputed offline over the same store range
(the partition-invariance property the test suite pins).  The only
impurity is the ``analysis.drift`` fault site, which lets chaos tests
force misclassification windows deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.collector import VscsiStatsCollector
from ..core.service import DiskKey
from ..faults import fire
from ..workloads.patterns import CHARACTERIZATION_SUITE, PatternSpec
from .characterize import (
    is_seekless,
    random_fraction,
    sequential_fraction,
    stream_count_estimate,
)
from .compare import total_variation_distance
from .recommend import WorkloadClass, categorize, recommend

__all__ = [
    "DriftConfig",
    "EpochVerdict",
    "OnlineAnalyzer",
    "match_personality",
    "format_verdict",
]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for the drift detector.

    ``families`` names the collector histogram families whose ``all``
    split is compared; latency and interarrival are excluded by
    default because they shift with *external* load (a busy array, a
    collocated tenant), not with the workload's own personality —
    §3.5's point that latency reflects the device, not the issuer.
    """

    #: TV distance above this marks an epoch as drifting.
    threshold: float = 0.35
    #: Consecutive drifting epochs required to fire a drift event.
    hysteresis_k: int = 3
    #: Epochs with fewer commands are classified idle and excluded
    #: from drift scoring and baseline updates.
    min_commands: int = 100
    #: Histogram families compared for the drift score.
    families: Tuple[str, ...] = ("io_length", "seek_distance",
                                 "outstanding")
    #: After an event, restart the baseline from the new personality
    #: (``True``) or keep accumulating over it (``False``).
    rebase_on_event: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {self.threshold}")
        if self.hysteresis_k < 1:
            raise ValueError(
                f"hysteresis_k must be >= 1, got {self.hysteresis_k}")
        if self.min_commands < 1:
            raise ValueError(
                f"min_commands must be >= 1, got {self.min_commands}")
        if not self.families:
            raise ValueError("families must name at least one family")


# ----------------------------------------------------------------------
# Personality matching
# ----------------------------------------------------------------------
#: Expected windowed-sequential fraction per pattern kind.
_SEQ_EXPECT = {"sequential": 1.0, "uniform": 0.0,
               "strided": 0.0, "zipfian": 0.0}
#: Expected edge-seek (random) fraction per pattern kind: uniform
#: jumps span the disk, zipfian mixes short hot-set hops with long
#: hot/cold crossings, strided steps stay short.
_RANDOM_EXPECT = {"sequential": 0.0, "uniform": 0.85,
                  "strided": 0.0, "zipfian": 0.6}


def _label_value(label: str) -> float:
    """Numeric value of a histogram bin label (``">65536"`` -> 65536)."""
    try:
        return float(label.lstrip(">").lstrip("<=").strip())
    except ValueError:
        return 0.0


def _log2_gap(a: float, b: float, span: float) -> float:
    """``|log2(a/b)|`` clipped to [0, 1] over ``span`` octaves."""
    if a <= 0 or b <= 0:
        return 1.0
    return min(1.0, abs(math.log2(a / b)) / span)


def match_personality(
    collector: VscsiStatsCollector,
    suite: Tuple[PatternSpec, ...] = CHARACTERIZATION_SUITE,
) -> Tuple[str, float]:
    """Name the nearest :class:`PatternSpec` personality.

    Scores every spec by a fixed, deterministic feature distance —
    read/write mix, windowed sequentiality vs the kind's expectation,
    edge-seek fraction, dominant I/O size (octaves) and typical queue
    depth (octaves) — and returns ``(name, distance)`` for the
    minimum.  Ties break toward suite order, so the result is a pure
    function of the collector.
    """
    reads = collector.read_fraction
    seq = sequential_fraction(collector.seek_distance_windowed.all)
    rand = random_fraction(collector.seek_distance.all)
    io_mode = _label_value(collector.io_length.all.mode_label())
    out_mode = _label_value(collector.outstanding.all.mode_label())
    best_name, best_score = "", math.inf
    for spec in suite:
        score = (
            1.5 * abs(reads - spec.read_fraction)
            + 1.0 * abs(seq - _SEQ_EXPECT[spec.kind])
            + 0.5 * abs(rand - _RANDOM_EXPECT[spec.kind])
            + 0.5 * _log2_gap(io_mode, spec.io_bytes, 4.0)
            + 0.25 * _log2_gap(out_mode, spec.outstanding, 3.0)
        )
        if score < best_score:
            best_name, best_score = spec.name, score
    return best_name, best_score


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EpochVerdict:
    """One vdisk's reading for one sealed epoch."""

    epoch: int
    vm: str
    vdisk: str
    commands: int
    workload_class: WorkloadClass
    read_fraction: float
    sequential: float
    random: float
    streams: int
    seekless: bool
    #: Nearest suite personality (``None`` for idle epochs).
    personality: Optional[str]
    personality_distance: float
    drift_score: float
    #: This epoch was over the threshold (streak in progress).
    drifting: bool
    #: The hysteresis streak completed on this epoch.
    drift_event: bool
    #: Lifetime drift events for this vdisk, this one included.
    drift_events_total: int
    #: Recommendation rules that appeared / disappeared vs the
    #: previous non-idle verdict for this vdisk.
    rules_added: Tuple[str, ...]
    rules_removed: Tuple[str, ...]
    rules: Tuple[str, ...]

    def to_dict(self) -> Dict:
        out = {
            "epoch": self.epoch, "vm": self.vm, "vdisk": self.vdisk,
            "commands": self.commands,
            "workload_class": self.workload_class.value,
            "read_fraction": self.read_fraction,
            "sequential": self.sequential, "random": self.random,
            "streams": self.streams, "seekless": self.seekless,
            "personality": self.personality,
            "personality_distance": self.personality_distance,
            "drift_score": self.drift_score, "drifting": self.drifting,
            "drift_event": self.drift_event,
            "drift_events_total": self.drift_events_total,
            "rules_added": list(self.rules_added),
            "rules_removed": list(self.rules_removed),
            "rules": list(self.rules),
        }
        if math.isinf(self.personality_distance):
            out["personality_distance"] = None
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "EpochVerdict":
        distance = data.get("personality_distance")
        return cls(
            epoch=data["epoch"], vm=data["vm"], vdisk=data["vdisk"],
            commands=data["commands"],
            workload_class=WorkloadClass(data["workload_class"]),
            read_fraction=data["read_fraction"],
            sequential=data["sequential"], random=data["random"],
            streams=data["streams"], seekless=data["seekless"],
            personality=data.get("personality"),
            personality_distance=(
                math.inf if distance is None else distance),
            drift_score=data["drift_score"],
            drifting=data["drifting"],
            drift_event=data["drift_event"],
            drift_events_total=data["drift_events_total"],
            rules_added=tuple(data.get("rules_added", ())),
            rules_removed=tuple(data.get("rules_removed", ())),
            rules=tuple(data.get("rules", ())),
        )


def format_verdict(verdict: EpochVerdict) -> str:
    """One-line rendering for the ``repro watch`` rolling display."""
    parts = [
        f"[e{verdict.epoch:04d}] {verdict.vm}/{verdict.vdisk}",
        f"{verdict.workload_class.value:<14}",
        f"{verdict.commands:>7} cmds",
        f"{verdict.read_fraction:>4.0%}r",
        f"seq={verdict.sequential:.0%}",
        f"drift={verdict.drift_score:.2f}",
    ]
    if verdict.streams > 1:
        parts.append(f"streams={verdict.streams}")
    if verdict.seekless:
        parts.append("flash")
    if verdict.personality:
        parts.append(f"~{verdict.personality}")
    if verdict.drift_event:
        parts.append(f"** DRIFT EVENT #{verdict.drift_events_total} **")
    elif verdict.drifting:
        parts.append("(drifting)")
    for rule in verdict.rules_added:
        parts.append(f"+{rule}")
    for rule in verdict.rules_removed:
        parts.append(f"-{rule}")
    return "  ".join(parts)


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
class _DiskState:
    """Per-vdisk drift bookkeeping."""

    __slots__ = ("baseline", "streak", "events", "rules", "last_verdict")

    def __init__(self) -> None:
        self.baseline: Optional[VscsiStatsCollector] = None
        self.streak = 0
        self.events = 0
        self.rules: Tuple[str, ...] = ()
        self.last_verdict: Optional[EpochVerdict] = None


class OnlineAnalyzer:
    """Streaming per-vdisk fingerprint/drift stage.

    Feed every sealed epoch through :meth:`observe_epoch`; read the
    verdicts it returns (or the rolling :meth:`verdicts` map).  State
    is a pure fold over the epoch sequence: the same epochs in the
    same order always produce the same verdicts, whether they arrive
    live from a daemon or from a store replay.
    """

    def __init__(self, config: Optional[DriftConfig] = None):
        self.config = config if config is not None else DriftConfig()
        self._disks: Dict[DiskKey, _DiskState] = {}
        #: Epochs observed (drives the default epoch index).
        self.epochs_seen = 0
        #: Verdicts emitted across all disks and epochs.
        self.verdicts_total = 0
        #: Drift events fired across all disks.
        self.drift_events_total = 0

    # ------------------------------------------------------------------
    def observe_epoch(
        self,
        epoch_or_pairs,
        index: Optional[int] = None,
    ) -> List[EpochVerdict]:
        """Analyze one sealed epoch; returns a verdict per active disk.

        Accepts a :class:`~repro.live.epochs.Epoch` (its own index is
        used) or an iterable of ``((vm, vdisk), collector)`` pairs.
        Disks are processed in sorted key order so verdict order is
        deterministic.
        """
        if hasattr(epoch_or_pairs, "service"):
            if index is None:
                index = epoch_or_pairs.index
            pairs: Iterable = epoch_or_pairs.service.collectors()
        else:
            pairs = epoch_or_pairs
        if index is None:
            index = self.epochs_seen
        verdicts = [
            self._observe_disk(key, collector, index)
            for key, collector in sorted(pairs, key=lambda kv: kv[0])
        ]
        self.epochs_seen += 1
        self.verdicts_total += len(verdicts)
        return verdicts

    def _observe_disk(self, key: DiskKey,
                      collector: VscsiStatsCollector,
                      index: int) -> EpochVerdict:
        config = self.config
        vm, vdisk = key
        state = self._disks.setdefault(key, _DiskState())
        active = collector.commands >= config.min_commands

        score = 0.0
        if active and state.baseline is not None:
            score = self.drift_score(state.baseline, collector)
        # Chaos hook: a scheduled ``partial`` forces this reading to
        # maximum drift — a misclassification window tests can aim at
        # the hysteresis logic; ``error``/``reset`` propagate to the
        # caller like any analysis failure would.
        action = fire("analysis.drift", vm=vm, vdisk=vdisk, epoch=index)
        if action is not None and action.kind == "partial":
            score = 1.0

        drifting = active and state.baseline is not None \
            and score > config.threshold
        event = False
        if drifting:
            state.streak += 1
            if state.streak >= config.hysteresis_k:
                event = True
                state.events += 1
                self.drift_events_total += 1
                state.streak = 0
        else:
            state.streak = 0

        # Baseline update: idle epochs never touch it; drifting epochs
        # are quarantined from it until the streak resolves; an event
        # rebases it onto the new personality.
        if active:
            if event and config.rebase_on_event:
                state.baseline = collector.copy()
            elif not drifting:
                state.baseline = (
                    collector.copy() if state.baseline is None
                    else state.baseline.merge(collector)
                )

        if active:
            personality, distance = match_personality(collector)
            rules = tuple(sorted(
                r.rule for r in recommend(collector)))
            added = tuple(r for r in rules if r not in state.rules)
            removed = tuple(r for r in state.rules if r not in rules)
            state.rules = rules
            sequential = sequential_fraction(
                collector.seek_distance_windowed.all)
            rand = random_fraction(collector.seek_distance.all)
            streams = stream_count_estimate(collector)
        else:
            personality, distance = None, math.inf
            rules, added, removed = state.rules, (), ()
            sequential = rand = 0.0
            streams = 0

        verdict = EpochVerdict(
            epoch=index, vm=vm, vdisk=vdisk,
            commands=collector.commands,
            workload_class=categorize(collector),
            read_fraction=collector.read_fraction,
            sequential=sequential, random=rand, streams=streams,
            seekless=is_seekless(collector),
            personality=personality, personality_distance=distance,
            drift_score=score, drifting=drifting, drift_event=event,
            drift_events_total=state.events,
            rules_added=added, rules_removed=removed, rules=rules,
        )
        state.last_verdict = verdict
        return verdict

    # ------------------------------------------------------------------
    def drift_score(self, baseline: VscsiStatsCollector,
                    collector: VscsiStatsCollector) -> float:
        """Max TV distance across the configured families."""
        score = 0.0
        for name in self.config.families:
            a = getattr(baseline, name).all
            b = getattr(collector, name).all
            score = max(score, total_variation_distance(a, b))
        return score

    # ------------------------------------------------------------------
    def seed_from_store(self, store, end_ns: Optional[int] = None) -> int:
        """Adopt the store's compacted history as per-disk baselines.

        Merges every record up to ``end_ns`` (default: everything) via
        one exact range query, so a freshly started watch compares
        live epochs against the full recorded history instead of
        re-learning it.  Returns the number of disks seeded.
        """
        horizon = (1 << 62) if end_ns is None else end_ns
        result = store.query(0, horizon)
        seeded = 0
        for key, collector in result.service.collectors():
            state = self._disks.setdefault(key, _DiskState())
            state.baseline = collector
            if collector.commands >= self.config.min_commands:
                state.rules = tuple(sorted(
                    r.rule for r in recommend(collector)))
            seeded += 1
        return seeded

    # ------------------------------------------------------------------
    def verdicts(self) -> List[EpochVerdict]:
        """Latest verdict per disk, in sorted key order."""
        return [
            self._disks[key].last_verdict
            for key in sorted(self._disks)
            if self._disks[key].last_verdict is not None
        ]

    def to_dict(self) -> Dict:
        """JSON-ready rolling state (the ``verdicts`` control op)."""
        return {
            "epochs_seen": self.epochs_seen,
            "verdicts_total": self.verdicts_total,
            "drift_events_total": self.drift_events_total,
            "config": {
                "threshold": self.config.threshold,
                "hysteresis_k": self.config.hysteresis_k,
                "min_commands": self.config.min_commands,
                "families": list(self.config.families),
            },
            "disks": {
                f"{v.vm}/{v.vdisk}": v.to_dict()
                for v in self.verdicts()
            },
        }
