"""One-call workload report: histograms + profile + recommendations.

``workload_report(collector)`` strings together everything an
administrator would ask of the service — the rendered histograms (the
paper's figures), the scalar characterization (§4's readings), the
workload class, and the tuning recommendations (§7) — into a single
text document.  The CLI's ``demo`` command and downstream tooling use
it as the default "show me this disk" view.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.collector import VscsiStatsCollector
from ..core.report import render_histogram
from .characterize import characterize, describe
from .recommend import categorize, recommend

__all__ = ["workload_report"]

#: The metric panels the report prints, in the paper's figure order.
_PANELS = (
    ("I/O Length Histogram", "io_length", "all"),
    ("Seek Distance Histogram", "seek_distance", "all"),
    ("Seek Distance Histogram (Writes)", "seek_distance", "writes"),
    ("Seek Distance Histogram (Reads)", "seek_distance", "reads"),
    ("Outstanding I/Os Histogram", "outstanding", "all"),
    ("I/O Latency Histogram (us)", "latency_us", "all"),
    # Flash-only families: empty (and therefore skipped) on vdisks
    # backed by mechanical arrays.
    ("Write Amplification Histogram (percent)", "write_amp_pct", "writes"),
    ("GC Pause Histogram (us)", "gc_pause_us", "all"),
)


def workload_report(collector: VscsiStatsCollector,
                    heading: Optional[str] = None,
                    panels: bool = True) -> str:
    """Render the full characterization of one virtual disk.

    ``panels=False`` limits the report to the textual analysis — the
    form that fits in a terminal scrollback or an alert email.
    """
    if not collector.commands:
        return (heading or "workload report") + "\n  (no commands observed)"
    sections: List[str] = []
    if heading:
        sections.append(heading)
        sections.append("=" * len(heading))

    sections.append(
        f"workload class: {categorize(collector).value}"
    )
    sections.append("")
    sections.append(describe(characterize(collector)))

    findings = recommend(collector)
    sections.append("")
    if findings:
        sections.append("recommendations:")
        for finding in findings:
            sections.append(
                f"  [{finding.severity}] {finding.rule}: {finding.message}"
            )
    else:
        sections.append("recommendations: none — nothing to tune")

    if panels:
        families = collector.families()
        for title, metric, split in _PANELS:
            hist = getattr(families[metric], split)
            if not hist.count:
                continue
            sections.append("")
            sections.append(render_histogram(hist, title=title))
    return "\n".join(sections)
