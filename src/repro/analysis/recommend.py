"""Automatic workload categorization and recommendations.

The paper's future work (§7): "We plan to investigate automatic
categorization of workloads and generation of recommendations for
virtual disk placement and storage subsystem optimization."  This
module implements that layer on top of the collectors, using only the
rules the paper itself articulates:

* stripe-size tuning needs the I/O size distribution (§1, [1]);
* reverse scans "hint at a potential weakness in the application's
  data layout algorithms" (§3.1);
* multiple interleaved sequential streams suggest "separat[ing] out
  sequential streams to different disk groups" (§3.1, §3.6);
* write latencies far above read latencies "might point to problems
  with the write-back cache strategy or cache capacity" (§3.4);
* high outstanding-I/O counts identify async/multi-threaded issuers
  (§3.3) that benefit from deeper queues.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..core.collector import VscsiStatsCollector
from .characterize import (
    interleaved_stream_signal,
    is_seekless,
    random_fraction,
    reverse_fraction,
    sequential_fraction,
)

__all__ = ["WorkloadClass", "Recommendation", "categorize", "recommend"]


class WorkloadClass(enum.Enum):
    """Coarse workload taxonomy an administrator reasons in."""

    OLTP = "oltp"                      # small, random, mixed r/w, concurrent
    STREAMING = "streaming"            # large or sequential, one direction
    FILE_SERVER = "file-server"        # mixed sizes, mild locality
    LOG_STRUCTURED = "log-structured"  # sequential writes, random reads
    IDLE = "idle"                      # too few commands to say


#: Minimum commands before categorization is meaningful.
_MIN_COMMANDS = 100

#: "Small" I/O for classification purposes: <= 16 KB.
_SMALL_IO_BYTES = 16 * 1024


@dataclass(frozen=True)
class Recommendation:
    """One actionable finding."""

    rule: str        # stable identifier, e.g. "split-streams"
    severity: str    # "info" | "tune" | "warn"
    message: str


def categorize(collector: VscsiStatsCollector) -> WorkloadClass:
    """Assign a coarse class from the histogram set."""
    if collector.commands < _MIN_COMMANDS:
        return WorkloadClass.IDLE
    seek = collector.seek_distance
    sequential_all = sequential_fraction(
        collector.seek_distance_windowed.all
    )
    small = collector.io_length.all.fraction_in(
        float("-inf"), _SMALL_IO_BYTES
    )
    reads = collector.read_fraction

    writes_sequential = (
        sequential_fraction(collector.seek_distance_windowed.writes)
        if seek.writes.count
        else 0.0
    )
    reads_random = (
        random_fraction(seek.reads) if seek.reads.count else 0.0
    )
    if writes_sequential > 0.7 and reads_random > 0.5 and 0.0 < reads < 1.0:
        return WorkloadClass.LOG_STRUCTURED
    if sequential_all > 0.7 or small < 0.3:
        return WorkloadClass.STREAMING
    if small > 0.7 and random_fraction(seek.all) > 0.4 and 0.1 < reads < 0.95:
        return WorkloadClass.OLTP
    return WorkloadClass.FILE_SERVER


def recommend(collector: VscsiStatsCollector) -> List[Recommendation]:
    """Generate placement/tuning recommendations from the histograms."""
    findings: List[Recommendation] = []
    if collector.commands < _MIN_COMMANDS:
        return findings
    # Spindle-mechanics rules (reverse scans, stream separation, the
    # write-back-cache heuristic) presume seeks and rotational caches;
    # on a flash-backed vdisk they misfire — flash programs are
    # inherently slower than flash reads, and address deltas cost
    # nothing — so they are gated off and replaced by WA/GC rules.
    seekless = is_seekless(collector)

    # --- reverse scans (§3.1) -------------------------------------
    # A uniformly random workload is ~50% negative by symmetry, so the
    # detector requires a clear backwards *bias*, not just negatives.
    reverse = reverse_fraction(collector.seek_distance.all)
    if not seekless and reverse > 0.65:
        findings.append(
            Recommendation(
                rule="reverse-scans",
                severity="warn",
                message=(
                    f"{reverse:.0%} of commands seek backwards; reverse "
                    "scans are slow on disks — review the application's "
                    "data layout."
                ),
            )
        )

    # --- interleaved sequential streams (§3.1/§3.6) ----------------
    signal = interleaved_stream_signal(collector)
    if not seekless and signal > 0.3:
        findings.append(
            Recommendation(
                rule="split-streams",
                severity="tune",
                message=(
                    "multiple interleaved sequential streams detected "
                    f"(window recovers {signal:.0%} sequentiality); "
                    "consider splitting the streams onto separate "
                    "virtual disks / disk groups."
                ),
            )
        )

    # --- stripe sizing from the size distribution ([1]) ------------
    dominant = collector.io_length.all.mode_label()
    if not dominant.startswith(">"):
        dominant_bytes = int(dominant)
        findings.append(
            Recommendation(
                rule="stripe-size",
                severity="info",
                message=(
                    f"dominant request size is {dominant_bytes} bytes; "
                    "RAID stripe elements should be at least this large "
                    "to keep one request on one spindle."
                ),
            )
        )

    # --- write-back cache health (§3.4) ----------------------------
    latency = collector.latency_us
    if (not seekless
            and latency.reads.count >= 50 and latency.writes.count >= 50):
        read_mean = latency.reads.mean
        write_mean = latency.writes.mean
        if read_mean > 0 and write_mean > 3.0 * read_mean:
            findings.append(
                Recommendation(
                    rule="write-cache",
                    severity="warn",
                    message=(
                        f"write latency ({write_mean:.0f} us) is "
                        f"{write_mean / read_mean:.1f}x read latency "
                        f"({read_mean:.0f} us); check the array's "
                        "write-back cache strategy and capacity."
                    ),
                )
            )

    # --- concurrency vs queue depth (§3.3) --------------------------
    outstanding = collector.outstanding.all
    if outstanding.count:
        high = 1.0 - outstanding.fraction_in(float("-inf"), 32)
        if high > 0.25:
            findings.append(
                Recommendation(
                    rule="queue-depth",
                    severity="tune",
                    message=(
                        f"{high:.0%} of arrivals found more than 32 "
                        "commands outstanding; verify the device queue "
                        "depth matches the workload's parallelism."
                    ),
                )
            )

    # --- flash write amplification --------------------------------
    wa = collector.write_amp_pct.writes
    if wa.count >= 50 and wa.mean > 150.0:
        findings.append(
            Recommendation(
                rule="flash-write-amp",
                severity="warn",
                message=(
                    f"write amplification averages {wa.mean / 100:.2f}x "
                    "on the flash backend; raise over-provisioning or "
                    "separate hot and cold data onto different virtual "
                    "disks to cut garbage-collection copying."
                ),
            )
        )

    # --- flash GC pause tail --------------------------------------
    gc = collector.gc_pause_us.writes.merge(collector.gc_pause_us.reads)
    if gc.count:
        long_pauses = 1.0 - gc.fraction_in(float("-inf"), 10_000)
        if long_pauses > 0.5:
            findings.append(
                Recommendation(
                    rule="flash-gc-pauses",
                    severity="tune",
                    message=(
                        f"{gc.count} commands absorbed garbage-collection "
                        f"pauses ({long_pauses:.0%} above 10 ms); spread "
                        "write bursts or raise the GC reserve so "
                        "collection runs ahead of the write front."
                    ),
                )
            )

    # --- latency tail (§3.5) ----------------------------------------
    if latency.all.count:
        tail = 1.0 - latency.all.fraction_in(float("-inf"), 30_000)
        if tail > 0.10:
            findings.append(
                Recommendation(
                    rule="latency-tail",
                    severity="warn",
                    message=(
                        f"{tail:.0%} of commands exceed 30 ms; the "
                        "device may be overloaded by external load "
                        "(check for collocated workloads)."
                    ),
                )
            )
    return findings
