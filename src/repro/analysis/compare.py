"""Histogram and collector comparison — the UFS-vs-ZFS style analysis.

§4.1 is a *comparison* study: the same workload through two
filesystems, read off as differences between histogram pairs.  The
functions here quantify those differences (total-variation distance,
mode shifts) and render a side-by-side report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.collector import VscsiStatsCollector
from ..core.histogram import Histogram

__all__ = [
    "total_variation_distance",
    "mode_shift",
    "MetricComparison",
    "compare_collectors",
    "render_comparison",
]


def total_variation_distance(a: Histogram, b: Histogram) -> float:
    """Total-variation distance between two normalized histograms.

    0.0 = identical shapes, 1.0 = disjoint support.  Requires matching
    bin schemes.  Empty histograms are well-defined rather than an
    error — an idle vdisk's first epoch after rotation has empty
    families: two empty histograms are identical (0.0), and an empty
    histogram is maximally far (1.0) from any populated one.
    """
    if a.scheme != b.scheme:
        raise ValueError(
            f"schemes differ: {a.scheme.name!r} vs {b.scheme.name!r}"
        )
    if not a.count and not b.count:
        return 0.0
    if not a.count or not b.count:
        return 1.0
    return 0.5 * sum(
        abs(ca / a.count - cb / b.count)
        for ca, cb in zip(a.counts, b.counts)
    )


def mode_shift(a: Histogram, b: Histogram) -> Tuple[str, str]:
    """The two most-populated bin labels — where each peak sits."""
    return a.mode_label(), b.mode_label()


@dataclass(frozen=True)
class MetricComparison:
    """One metric's difference between two systems."""

    metric: str
    distance: float
    mode_a: str
    mode_b: str

    @property
    def changed(self) -> bool:
        """Heuristic: the workload looks different through this metric."""
        return self.distance > 0.25 or self.mode_a != self.mode_b


def compare_collectors(a: VscsiStatsCollector, b: VscsiStatsCollector,
                       split: str = "all") -> Dict[str, MetricComparison]:
    """Compare every shared metric family of two collectors.

    ``split`` selects ``"all"``, ``"reads"`` or ``"writes"`` — §4.1
    drills into the write-only seek histograms to spot ZFS's
    sequentialization.
    """
    if split not in ("all", "reads", "writes"):
        raise ValueError(f"split must be all/reads/writes, got {split!r}")
    results: Dict[str, MetricComparison] = {}
    for metric, family_a in a.families().items():
        family_b = b.families()[metric]
        hist_a: Histogram = getattr(family_a, split)
        hist_b: Histogram = getattr(family_b, split)
        if not hist_a.count or not hist_b.count:
            continue
        results[metric] = MetricComparison(
            metric=metric,
            distance=total_variation_distance(hist_a, hist_b),
            mode_a=hist_a.mode_label(),
            mode_b=hist_b.mode_label(),
        )
    return results


def render_comparison(comparisons: Dict[str, MetricComparison],
                      label_a: str = "A", label_b: str = "B") -> str:
    """Text table of a comparison, biggest differences first."""
    lines: List[str] = []
    lines.append(
        f"{'metric':<24} {'TV-dist':>8}  {label_a + ' mode':>14}  "
        f"{label_b + ' mode':>14}"
    )
    for comparison in sorted(
        comparisons.values(), key=lambda c: c.distance, reverse=True
    ):
        marker = " *" if comparison.changed else ""
        lines.append(
            f"{comparison.metric:<24} {comparison.distance:>8.3f}  "
            f"{comparison.mode_a:>14}  {comparison.mode_b:>14}{marker}"
        )
    return "\n".join(lines)
