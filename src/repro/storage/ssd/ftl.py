"""Page-mapped DFTL-style flash translation layer.

The 2007 paper characterizes workloads against mechanical arrays; this
module models the storage technology that replaced them, so the same
online histogram service can be pointed at flash.  The model follows
the DFTL design point: the full logical-page → physical-page map lives
in flash translation pages, and the device RAM holds only a small LRU
**cached mapping table** (CMT).  A mapping lookup that misses the CMT
pays a translation-page read; evicting a *dirty* CMT entry pays a
translation-page program.

Physical space is organized as erase blocks of ``pages_per_block``
flash pages, striped across ``channels`` independent channels (blocks
are assigned round-robin: block *b* belongs to channel ``b % channels``).
Each channel has its own write frontier (active block); host and GC
writes allocate pages from it, so a channel's garbage collection never
touches another channel's blocks.

Garbage collection is greedy and threshold-triggered, per channel:
when a channel's free-block count drops to ``gc_free_blocks`` at
allocation time, sealed blocks with the fewest valid pages are chosen
as victims (ties break toward the lowest block id, keeping runs
deterministic), their valid pages are migrated to the frontier, and
the blocks are erased — until ``gc_target_blocks`` are free again or
no victim would gain anything.  The whole reclamation cost (migration
reads + programs + erases) is returned to the caller as a **GC pause**
charged ahead of the triggering host write, which is exactly the
latency artifact the ``gc_pause_us`` histogram family captures.

Write amplification is accounted in pages: ``flash_pages_programmed``
(host programs plus GC migrations) over ``host_pages_written``.  The
over-provisioned share of physical space (``op_ratio``) is what keeps
the greedy victim from being full of valid data on a logically full
drive — shrink it and WA climbs, exactly as on real hardware.

The ``ssd.gc`` fault site fires at every GC trigger; a ``partial``
action doubles the reclaim target for that run (a GC storm), a
``delay``/``error``/``reset`` behaves as at any other site.

All state updates are plain integer arithmetic over lists in a fixed
iteration order, so a replay with the same command stream reproduces
byte-identical mapping state, counters and pause timings.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ...faults import fire

__all__ = ["SsdModel", "Ftl"]

#: Bytes per SCSI logical block (the unit of every ``lba``/``nblocks``).
SECTOR_BYTES = 512


@dataclass(frozen=True)
class SsdModel:
    """Flash geometry, cache sizing and service timing.

    Defaults approximate an early enterprise SATA/SAS SSD: 4 KiB
    pages, 1 MiB erase blocks, 8 channels, 12.5% over-provisioning,
    ~50 µs page reads and ~200 µs programs.
    """

    capacity_blocks: int = 2_097_152          # 1 GiB logical, 512 B sectors
    page_blocks: int = 8                      # 4 KiB flash page
    pages_per_block: int = 256                # 1 MiB erase block
    channels: int = 8
    op_ratio: float = 0.125                   # over-provisioned share
    cmt_entries: int = 32_768                 # cached mapping table slots
    read_page_us: float = 50.0
    program_page_us: float = 200.0
    erase_block_us: float = 2_000.0
    channel_overhead_us: float = 10.0         # per flash op
    gc_free_blocks: int = 2                   # per-channel trigger threshold
    gc_target_blocks: int = 4                 # per-channel reclaim target

    @property
    def logical_pages(self) -> int:
        """Logical flash pages exposed to the host."""
        return -(-self.capacity_blocks // self.page_blocks)

    @property
    def total_blocks(self) -> int:
        """Physical erase blocks including over-provisioning, rounded
        up to a whole block per channel.

        ``op_ratio`` is a *minimum* share: every channel always gets at
        least the logical blocks it must hold plus the GC reclaim
        target plus a two-block migration reserve, so small test drives
        stay valid without hand-tuning the ratio.
        """
        physical_pages = int(self.logical_pages * (1.0 + self.op_ratio))
        blocks = -(-physical_pages // self.pages_per_block)
        per_channel = -(-blocks // self.channels)
        logical_blocks = -(-self.logical_pages // self.pages_per_block)
        floor = (-(-logical_blocks // self.channels)
                 + self.gc_target_blocks + 2)
        return max(per_channel, floor) * self.channels

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block


class Ftl:
    """DFTL mapping, allocation and garbage-collection state machine.

    The FTL is *timing-aware but engine-free*: :meth:`read` and
    :meth:`write` update mapping state instantly and return the flash
    work as ``(channel, service_ns)`` op lists (plus the GC pause for
    writes), which :class:`~repro.storage.ssd.array.SsdArray` feeds to
    its simulated channels.
    """

    def __init__(self, model: Optional[SsdModel] = None, name: str = "ssd"):
        self.model = model = model if model is not None else SsdModel()
        self.name = name
        if model.gc_free_blocks < 2:
            raise ValueError("gc_free_blocks must be >= 2 (the GC "
                             "migration reserve)")
        if model.gc_target_blocks <= model.gc_free_blocks:
            raise ValueError("gc_target_blocks must exceed gc_free_blocks")
        per_channel = model.total_blocks // model.channels
        min_spare = model.gc_target_blocks + 2
        logical_blocks = -(-model.logical_pages // model.pages_per_block)
        if per_channel - (-(-logical_blocks // model.channels)) < min_spare:
            raise ValueError(
                f"over-provisioning too small: {per_channel} blocks/channel "
                f"cannot hold the logical space plus a {min_spare}-block "
                "GC reserve; raise op_ratio or shrink capacity_blocks"
            )

        ppb = model.pages_per_block
        # Mapping state: logical page -> physical page (-1 unmapped),
        # physical page -> logical page (-1 invalid/erased).
        self._l2p: List[int] = [-1] * model.logical_pages
        self._p2l: List[int] = [-1] * model.total_pages
        self._valid: List[int] = [0] * model.total_blocks
        # Per-channel allocation state.
        nchan = model.channels
        self._free: List[Deque[int]] = [deque() for _ in range(nchan)]
        for block in range(model.total_blocks):
            self._free[block % nchan].append(block)
        self._active: List[int] = [self._free[c].popleft()
                                   for c in range(nchan)]
        self._active_used: List[int] = [0] * nchan
        # Sealed (fully written) blocks per channel — the GC victim pool.
        self._sealed: List[List[int]] = [[] for _ in range(nchan)]
        self._next_write_channel = 0
        # Cached mapping table: lpn -> dirty flag, LRU order.
        self._cmt: "OrderedDict[int, bool]" = OrderedDict()

        # Service times in integer ns.
        self._read_ns = int(model.read_page_us * 1_000)
        self._program_ns = int(model.program_page_us * 1_000)
        self._erase_ns = int(model.erase_block_us * 1_000)
        self._overhead_ns = int(model.channel_overhead_us * 1_000)

        # Lifetime counters.
        self.host_pages_written = 0
        self.host_pages_read = 0
        self.flash_pages_programmed = 0
        self.gc_migrated_pages = 0
        self.gc_runs = 0
        self.blocks_erased = 0
        self.cmt_hits = 0
        self.cmt_misses = 0
        self.translation_reads = 0
        self.translation_programs = 0

    # ------------------------------------------------------------------
    # Derived reporting
    # ------------------------------------------------------------------
    def write_amplification(self) -> float:
        """Flash programs per host program (1.0 = no amplification)."""
        if not self.host_pages_written:
            return 0.0
        return self.flash_pages_programmed / self.host_pages_written

    def wa_pct(self) -> Optional[int]:
        """Cumulative WA in integer percent (100 = 1.0×), ``None``
        before the first host write — the ``write_amp_pct`` sample."""
        if not self.host_pages_written:
            return None
        return self.flash_pages_programmed * 100 // self.host_pages_written

    def free_blocks(self) -> int:
        """Free erase blocks across all channels."""
        return sum(len(free) for free in self._free)

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    def _page_span(self, lba: int, nblocks: int) -> Tuple[int, int]:
        pb = self.model.page_blocks
        return lba // pb, (lba + nblocks - 1) // pb

    def read(self, lba: int, nblocks: int) -> List[Tuple[int, int]]:
        """Plan a host read: ``(channel, service_ns)`` per flash page.

        A mapped page costs a mapping lookup (CMT) plus a page read on
        the channel holding it; an unmapped page returns zeros from the
        controller for just the per-op overhead.
        """
        first, last = self._page_span(lba, nblocks)
        ppb = self.model.pages_per_block
        nchan = self.model.channels
        ops: List[Tuple[int, int]] = []
        for lpn in range(first, last + 1):
            ppn = self._l2p[lpn]
            if ppn >= 0:
                self.host_pages_read += 1
                channel = (ppn // ppb) % nchan
                service = (self._overhead_ns + self._read_ns
                           + self._cmt_access(lpn, dirty=False))
            else:
                channel = lpn % nchan
                service = self._overhead_ns
            ops.append((channel, service))
        return ops

    def write(self, lba: int, nblocks: int) -> Tuple[List[Tuple[int, int]],
                                                     int]:
        """Plan a host write: op list plus the GC pause it triggered.

        Each logical page takes a mapping update (CMT, dirty), a page
        allocation on the round-robin channel frontier — which may
        trigger garbage collection, whose full cost is charged ahead of
        that page's program — and the program itself.  A partial edge
        page over mapped data pays a read-modify-write page read.
        """
        first, last = self._page_span(lba, nblocks)
        pb = self.model.page_blocks
        nchan = self.model.channels
        gc_total_ns = 0
        ops: List[Tuple[int, int]] = []
        for lpn in range(first, last + 1):
            channel = self._next_write_channel
            self._next_write_channel = (channel + 1) % nchan
            service = self._overhead_ns + self._cmt_access(lpn, dirty=True)
            old = self._l2p[lpn]
            partial = ((lpn == first and lba % pb != 0)
                       or (lpn == last and (lba + nblocks) % pb != 0))
            if partial and old >= 0:
                # Read-modify-write: fetch the rest of the page first.
                service += self._read_ns
                self.host_pages_read += 1
            if old >= 0:
                self._invalidate(old)
            ppn, gc_ns = self._allocate(channel)
            gc_total_ns += gc_ns
            self._l2p[lpn] = ppn
            self._p2l[ppn] = lpn
            self._valid[ppn // self.model.pages_per_block] += 1
            self.host_pages_written += 1
            self.flash_pages_programmed += 1
            service += gc_ns + self._program_ns
            ops.append((channel, service))
        return ops, gc_total_ns

    def prefill(self) -> None:
        """Map every logical page, as a drive restored from an image.

        Sequential lpn → frontier allocation, free of charge: no
        timing, no CMT traffic, and no effect on the WA counters (the
        image's content did not pass through the host write path).
        """
        for lpn in range(self.model.logical_pages):
            channel = self._next_write_channel
            self._next_write_channel = (channel + 1) % self.model.channels
            ppn, _gc = self._allocate(channel, during_gc=True)
            self._l2p[lpn] = ppn
            self._p2l[ppn] = lpn
            self._valid[ppn // self.model.pages_per_block] += 1

    # ------------------------------------------------------------------
    # Mapping cache (the DFTL CMT)
    # ------------------------------------------------------------------
    def _cmt_access(self, lpn: int, dirty: bool) -> int:
        """Charge one mapping lookup/update; returns the ns it costs."""
        cmt = self._cmt
        entry = cmt.get(lpn)
        if entry is not None:
            cmt.move_to_end(lpn)
            if dirty and not entry:
                cmt[lpn] = True
            self.cmt_hits += 1
            return 0
        self.cmt_misses += 1
        ns = self._read_ns  # translation-page read
        self.translation_reads += 1
        if len(cmt) >= self.model.cmt_entries:
            _old_lpn, old_dirty = cmt.popitem(last=False)
            if old_dirty:
                # Write back the evicted mapping's translation page.
                ns += self._program_ns
                self.translation_programs += 1
        cmt[lpn] = dirty
        return ns

    # ------------------------------------------------------------------
    # Allocation and garbage collection
    # ------------------------------------------------------------------
    def _invalidate(self, ppn: int) -> None:
        self._p2l[ppn] = -1
        self._valid[ppn // self.model.pages_per_block] -= 1

    def _allocate(self, channel: int, during_gc: bool = False
                  ) -> Tuple[int, int]:
        """Take the next page on ``channel``'s frontier.

        Returns ``(ppn, gc_pause_ns)``; the pause is nonzero when this
        allocation found the channel at its free-block threshold and
        ran garbage collection first.  GC's own migrations allocate
        with ``during_gc=True`` and can never re-enter.
        """
        gc_ns = 0
        if not during_gc \
                and len(self._free[channel]) <= self.model.gc_free_blocks \
                and self._sealed[channel]:
            gc_ns = self._collect(channel)
        ppb = self.model.pages_per_block
        if self._active_used[channel] >= ppb:
            self._sealed[channel].append(self._active[channel])
            free = self._free[channel]
            if not free:
                raise RuntimeError(
                    f"SSD {self.name!r} channel {channel} has no free "
                    "erase blocks — over-provisioning exhausted"
                )
            self._active[channel] = free.popleft()
            self._active_used[channel] = 0
        ppn = (self._active[channel] * ppb + self._active_used[channel])
        self._active_used[channel] += 1
        return ppn, gc_ns

    def _collect(self, channel: int) -> int:
        """Greedy reclamation on one channel; returns the pause in ns."""
        model = self.model
        target = model.gc_target_blocks
        action = fire("ssd.gc", name=self.name, channel=channel,
                      free_blocks=len(self._free[channel]))
        if action is not None and action.kind == "partial":
            # GC storm: the chaos plan forces a much deeper reclaim.
            target *= 2
        self.gc_runs += 1
        ppb = model.pages_per_block
        sealed = self._sealed[channel]
        free = self._free[channel]
        gc_ns = 0
        migrate_ns = self._read_ns + self._program_ns
        while len(free) < target and sealed:
            victim = min(sealed, key=lambda b: (self._valid[b], b))
            if self._valid[victim] >= ppb:
                break  # every page still valid: erasing gains nothing
            sealed.remove(victim)
            base = victim * ppb
            for ppn in range(base, base + ppb):
                lpn = self._p2l[ppn]
                if lpn < 0:
                    continue
                new_ppn, _gc = self._allocate(channel, during_gc=True)
                self._l2p[lpn] = new_ppn
                self._p2l[new_ppn] = lpn
                self._p2l[ppn] = -1
                self._valid[new_ppn // ppb] += 1
                gc_ns += migrate_ns
                self.flash_pages_programmed += 1
                self.gc_migrated_pages += 1
                # The migrated mapping changed: a cached copy is now
                # dirty (no charge — the GTD update rides the migration).
                if lpn in self._cmt:
                    self._cmt[lpn] = True
            self._valid[victim] = 0
            free.append(victim)
            gc_ns += self._erase_ns
            self.blocks_erased += 1
        return gc_ns

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Counter snapshot for reports and benchmarks."""
        return {
            "host_pages_written": self.host_pages_written,
            "host_pages_read": self.host_pages_read,
            "flash_pages_programmed": self.flash_pages_programmed,
            "gc_migrated_pages": self.gc_migrated_pages,
            "gc_runs": self.gc_runs,
            "blocks_erased": self.blocks_erased,
            "cmt_hits": self.cmt_hits,
            "cmt_misses": self.cmt_misses,
            "translation_reads": self.translation_reads,
            "translation_programs": self.translation_programs,
            "write_amplification": self.write_amplification(),
            "free_blocks": self.free_blocks(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Ftl {self.name!r} blocks={self.model.total_blocks} "
                f"wa={self.write_amplification():.2f}>")
