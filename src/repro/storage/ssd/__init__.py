"""DFTL-style SSD backend: mapping cache, erase-block GC, channels.

Drop-in interchangeable with :class:`~repro.storage.array.StorageArray`
beneath the hypervisor's vdisk extents; see :mod:`repro.storage.ssd.ftl`
for the FTL model and ``docs/ssd.md`` for knobs and metric semantics.
"""

from .array import SsdArray, ssd_array
from .ftl import Ftl, SsdModel

__all__ = ["Ftl", "SsdArray", "SsdModel", "ssd_array"]
