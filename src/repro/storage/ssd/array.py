"""The SSD as a block target — drop-in beneath the hypervisor's vdisks.

:class:`SsdArray` exports the exact request interface of
:class:`~repro.storage.array.StorageArray` (``submit`` /
``submit_batch`` / ``capacity_blocks`` / ``name``), so
``EsxServer.create_vdisk`` can carve extents out of either without
knowing which technology sits below — the precondition for the
``ssd_vs_disk`` experiment replaying one workload against both.

Service timing comes from the channel model: every flash op planned by
the :class:`~repro.storage.ssd.ftl.Ftl` is queued on its channel, and
each channel services one op at a time (the same serial-server shape as
:class:`~repro.storage.disk.Disk`, minus the head).  A host command
completes when its last flash op finishes plus a fixed transport time.

Completion telemetry: immediately before a command's ``on_done``
callback runs, the array publishes ``(wa_pct, gc_pause_us)`` for that
command; the vSCSI layer fetches it with
:meth:`take_completion_telemetry` and feeds the ``write_amp_pct`` and
``gc_pause_us`` histogram families.  Mechanical backends have no such
method, so their vdisks report both families empty — that contrast is
itself the fingerprint the analysis layer keys on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ...sim.engine import Engine, us
from .ftl import Ftl, SsdModel

__all__ = ["SsdArray", "ssd_array"]


class _Channel:
    """One flash channel: a serial server with a FIFO op queue."""

    __slots__ = ("engine", "name", "_queue", "_busy", "ops", "busy_ns",
                 "max_queue")

    def __init__(self, engine: Engine, name: str):
        self.engine = engine
        self.name = name
        self._queue: Deque[Tuple[int, Callable[[], None]]] = deque()
        self._busy = False
        self.ops = 0
        self.busy_ns = 0
        self.max_queue = 0

    def submit(self, service_ns: int, on_done: Callable[[], None]) -> None:
        self._queue.append((service_ns, on_done))
        if len(self._queue) > self.max_queue:
            self.max_queue = len(self._queue)
        if not self._busy:
            self._service_next()

    def _service_next(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        service_ns, on_done = self._queue.popleft()
        self.ops += 1
        self.busy_ns += service_ns

        def finish() -> None:
            self._busy = False
            on_done()
            self._service_next()

        self.engine.schedule(service_ns, finish)

    def utilization(self) -> float:
        now = self.engine.now
        return self.busy_ns / now if now else 0.0


class SsdArray:
    """A flash block target servicing logical accesses through a DFTL.

    Parameters
    ----------
    engine:
        The simulation engine.
    model:
        Flash geometry, cache sizing and timing (:class:`SsdModel`).
    prefill:
        Map every logical page up front, as a drive restored from an
        image — overwrites then invalidate pages immediately, so GC
        pressure (and measurable write amplification) appears within a
        short run instead of only after a full drive write.
    transport_us:
        Fixed link round-trip added to every command.
    """

    def __init__(self, engine: Engine, model: Optional[SsdModel] = None,
                 prefill: bool = True, transport_us: float = 20.0,
                 name: str = "ssd"):
        self.engine = engine
        self.name = name
        self.model = model = model if model is not None else SsdModel()
        self.ftl = Ftl(model, name=name)
        if prefill:
            self.ftl.prefill()
        self.channels: List[_Channel] = [
            _Channel(engine, name=f"{name}.ch{i}")
            for i in range(model.channels)
        ]
        self.transport_ns = us(transport_us)
        self.capacity_blocks = model.capacity_blocks
        # Counters.
        self.reads = 0
        self.writes = 0
        # (wa_pct, gc_pause_us) of the command whose on_done is running.
        self._telemetry: Optional[Tuple[Optional[int], Optional[int]]] = None

    # ------------------------------------------------------------------
    def submit(self, lba: int, nblocks: int, is_read: bool,
               on_done: Callable[[], None]) -> None:
        """Service one logical access; ``on_done`` fires at completion."""
        if lba < 0 or lba + nblocks > self.capacity_blocks:
            raise ValueError(
                f"access [{lba}, {lba + nblocks}) outside SSD of "
                f"{self.capacity_blocks} blocks"
            )
        if is_read:
            self.reads += 1
            ops = self.ftl.read(lba, nblocks)
            wa_pct: Optional[int] = None
            gc_pause_us: Optional[int] = None
        else:
            self.writes += 1
            ops, gc_ns = self.ftl.write(lba, nblocks)
            wa_pct = self.ftl.wa_pct()
            gc_pause_us = gc_ns // 1_000 if gc_ns else None

        remaining = [len(ops)]

        def complete() -> None:
            self._telemetry = (wa_pct, gc_pause_us)
            on_done()

        if not remaining[0]:
            self.engine.schedule(self.transport_ns, complete)
            return

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self.engine.schedule(self.transport_ns, complete)

        channels = self.channels
        for channel_index, service_ns in ops:
            channels[channel_index].submit(service_ns, one_done)

    def submit_batch(self, ops: List[tuple]) -> None:
        """Service a burst of ``(lba, nblocks, is_read, on_done)`` ops.

        Semantically a :meth:`submit` loop, mirroring
        :meth:`StorageArray.submit_batch`.
        """
        for lba, nblocks, is_read, on_done in ops:
            self.submit(lba, nblocks, is_read, on_done)

    # ------------------------------------------------------------------
    def take_completion_telemetry(self) -> Tuple[Optional[int],
                                                 Optional[int]]:
        """``(wa_pct, gc_pause_us)`` for the command whose completion
        callback is currently running; fetch-and-clear.

        The engine is single-threaded and completions run their
        callbacks synchronously, so the value set immediately before
        ``on_done`` is exactly the one the vSCSI layer reads inside it.
        """
        telemetry = self._telemetry
        self._telemetry = None
        return telemetry if telemetry is not None else (None, None)

    # ------------------------------------------------------------------
    def total_flash_ops(self) -> int:
        """Channel-level flash operations serviced."""
        return sum(channel.ops for channel in self.channels)

    def write_amplification(self) -> float:
        return self.ftl.write_amplification()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SsdArray {self.name!r} channels={len(self.channels)} "
            f"r/w={self.reads}/{self.writes} "
            f"wa={self.ftl.write_amplification():.2f}>"
        )


# ----------------------------------------------------------------------
# Preset
# ----------------------------------------------------------------------
def ssd_array(engine: Engine, capacity_blocks: int = 2_097_152,
              prefill: bool = True, name: str = "ssd",
              **model_overrides) -> SsdArray:
    """An enterprise-flash preset sized for the characterization bed.

    ``capacity_blocks`` is the logical LUN size in 512 B sectors
    (default 1 GiB); further :class:`SsdModel` fields pass through as
    keyword overrides (e.g. ``op_ratio=0.07`` to study WA under tight
    over-provisioning).
    """
    model = SsdModel(capacity_blocks=capacity_blocks, **model_overrides)
    return SsdArray(engine, model=model, prefill=prefill, name=name)
