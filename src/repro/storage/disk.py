"""Mechanical disk service-time model.

The interference results in the paper (Fig. 6) come down to two facts
about spinning disks:

1. A *sequential* read stream is served from the drive's firmware
   read-ahead buffer at interface speed — tens of microseconds per
   command — because the head never moves.
2. The moment an unrelated stream interleaves, the head is pulled
   away, the read-ahead window is invalidated, and every "sequential"
   command now pays a full seek plus rotational latency — milliseconds.

The model therefore tracks head position and a read-ahead window, and
computes per-command service time as::

    buffer hit:   overhead + bytes / interface_rate
    otherwise:    overhead + seek(distance) + rotation/2 + bytes / media_rate

Seek time uses the standard square-root curve between track-to-track
and full-stroke times.  Commands are serviced one at a time in FIFO
order, so queueing delay under concurrency emerges naturally.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from ..sim.engine import Engine, NS_PER_SEC

__all__ = ["DiskModel", "Disk"]


@dataclass(frozen=True)
class DiskModel:
    """Drive parameters.

    Defaults approximate a mid-2000s 10k-rpm FC enterprise drive of
    the kind populating the paper's EMC arrays.
    """

    capacity_blocks: int = 286_749_488        # ~146 GB of 512 B blocks
    rpm: int = 10_000
    track_to_track_ms: float = 0.4
    full_stroke_ms: float = 9.5
    media_mbps: float = 80.0                  # sustained media rate, MB/s
    interface_mbps: float = 400.0             # FC interface rate, MB/s
    readahead_blocks: int = 2_048             # 1 MB firmware read-ahead
    overhead_us: float = 60.0                 # per-command controller overhead
    hit_overhead_us: float = 10.0             # overhead on a buffer hit

    @property
    def half_rotation_ns(self) -> int:
        """Average rotational latency (half a revolution) in ns."""
        return int(60.0 / self.rpm / 2.0 * NS_PER_SEC)

    def seek_ns(self, distance_blocks: int) -> int:
        """Seek time for a head move of ``distance_blocks``.

        Square-root interpolation between track-to-track and
        full-stroke; zero distance costs nothing.
        """
        if distance_blocks <= 0:
            return 0
        fraction = min(1.0, distance_blocks / self.capacity_blocks)
        seek_ms = self.track_to_track_ms + (
            self.full_stroke_ms - self.track_to_track_ms
        ) * math.sqrt(fraction)
        return int(seek_ms * 1e6)

    def media_transfer_ns(self, nbytes: int) -> int:
        """Time to move ``nbytes`` off the platter."""
        return int(nbytes / (self.media_mbps * 1e6) * NS_PER_SEC)

    def interface_transfer_ns(self, nbytes: int) -> int:
        """Time to move ``nbytes`` over the interface (buffer hits)."""
        return int(nbytes / (self.interface_mbps * 1e6) * NS_PER_SEC)


class Disk:
    """A single spindle servicing one command at a time.

    ``submit(lba, nblocks, is_read, on_done)`` queues a command; the
    callback fires when the platter transfer finishes.  Two queueing
    disciplines are modeled:

    * ``"fifo"`` — strict arrival order;
    * ``"sstf"`` — shortest-seek-time-first, the effect of SCSI tagged
      command queueing: the firmware picks the queued command nearest
      the head.  Starvation is bounded by an age limit (a command that
      has waited ``sstf_starvation_limit`` services is taken next
      regardless), as real firmware does.
    """

    def __init__(self, engine: Engine, model: Optional[DiskModel] = None,
                 name: str = "disk", scheduling: str = "fifo",
                 sstf_starvation_limit: int = 16):
        if scheduling not in ("fifo", "sstf"):
            raise ValueError(
                f"scheduling must be 'fifo' or 'sstf', got {scheduling!r}"
            )
        self.engine = engine
        self.model = model if model is not None else DiskModel()
        self.name = name
        self.scheduling = scheduling
        self.sstf_starvation_limit = sstf_starvation_limit
        self._head_block = 0
        self._readahead_end: Optional[int] = None  # exclusive end of the window
        # Entries: (lba, nblocks, is_read, on_done, age_counter_base).
        self._queue: Deque[Tuple[int, int, bool, Callable[[], None], int]] = deque()
        self._busy = False
        self._services = 0
        # Lifetime counters.
        self.commands = 0
        self.buffer_hits = 0
        self.busy_ns = 0
        self.max_queue = 0

    # ------------------------------------------------------------------
    def submit(self, lba: int, nblocks: int, is_read: bool,
               on_done: Callable[[], None]) -> None:
        """Queue one command for service."""
        if not 0 <= lba < self.model.capacity_blocks:
            raise ValueError(f"LBA {lba} outside disk {self.name!r}")
        self._queue.append((lba, nblocks, is_read, on_done, self._services))
        if len(self._queue) > self.max_queue:
            self.max_queue = len(self._queue)
        if not self._busy:
            self._service_next()

    @property
    def queue_depth(self) -> int:
        """Commands waiting plus the one in service."""
        return len(self._queue) + (1 if self._busy else 0)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the disk was busy."""
        now = self.engine.now
        return self.busy_ns / now if now else 0.0

    # ------------------------------------------------------------------
    def _pick_next(self) -> Tuple[int, int, bool, Callable[[], None], int]:
        """Dequeue per the scheduling discipline."""
        if self.scheduling == "fifo" or len(self._queue) == 1:
            return self._queue.popleft()
        # SSTF with starvation bound: the oldest command wins once it
        # has been passed over for too many service slots.
        oldest = self._queue[0]
        if self._services - oldest[4] >= self.sstf_starvation_limit:
            return self._queue.popleft()
        best_index = 0
        best_distance = None
        for index, entry in enumerate(self._queue):
            distance = abs(entry[0] - self._head_block)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_index = index
        self._queue.rotate(-best_index)
        chosen = self._queue.popleft()
        self._queue.rotate(best_index)
        return chosen

    def _service_next(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        lba, nblocks, is_read, on_done, _age = self._pick_next()
        self._services += 1
        service_ns = self._service_time_ns(lba, nblocks, is_read)
        self.commands += 1
        self.busy_ns += service_ns

        def finish() -> None:
            self._busy = False
            on_done()
            self._service_next()

        self.engine.schedule(service_ns, finish)

    def _service_time_ns(self, lba: int, nblocks: int, is_read: bool) -> int:
        model = self.model
        nbytes = nblocks * 512
        end = lba + nblocks

        hit = (
            is_read
            and self._readahead_end is not None
            and self._head_block <= lba
            and end <= self._readahead_end
        )
        if hit:
            self.buffer_hits += 1
            # Stream continues: slide the window forward from this read.
            self._head_block = end
            self._readahead_end = end + model.readahead_blocks
            return int(model.hit_overhead_us * 1_000) + model.interface_transfer_ns(
                nbytes
            )

        distance = abs(lba - self._head_block)
        service = int(model.overhead_us * 1_000) + model.media_transfer_ns(nbytes)
        if distance:
            service += model.seek_ns(distance) + model.half_rotation_ns
        self._head_block = end
        if is_read:
            # Firmware read-ahead re-arms behind any read.
            self._readahead_end = end + model.readahead_blocks
        else:
            # A write repositions the head and trashes the window.
            self._readahead_end = None
        return service

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Disk {self.name!r} q={self.queue_depth} cmds={self.commands}>"
