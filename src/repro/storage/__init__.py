"""Storage array substrate: spindles, RAID, caches, testbed presets."""

from .array import StorageArray, clariion_cx3, symmetrix
from .cache import DEFAULT_LINE_BLOCKS, ReadCache, WriteBackCache
from .disk import Disk, DiskModel
from .raid import DEFAULT_STRIPE_BLOCKS, PhysicalOp, Raid0, Raid5, RaidLayout

__all__ = [
    "StorageArray",
    "clariion_cx3",
    "symmetrix",
    "DEFAULT_LINE_BLOCKS",
    "ReadCache",
    "WriteBackCache",
    "Disk",
    "DiskModel",
    "DEFAULT_STRIPE_BLOCKS",
    "PhysicalOp",
    "Raid0",
    "Raid5",
    "RaidLayout",
]
