"""Storage substrate: spindles, RAID, caches, flash, testbed presets."""

from .array import StorageArray, clariion_cx3, symmetrix
from .cache import DEFAULT_LINE_BLOCKS, ReadCache, WriteBackCache
from .disk import Disk, DiskModel
from .raid import DEFAULT_STRIPE_BLOCKS, PhysicalOp, Raid0, Raid5, RaidLayout
from .ssd import Ftl, SsdArray, SsdModel, ssd_array

__all__ = [
    "StorageArray",
    "clariion_cx3",
    "symmetrix",
    "Ftl",
    "SsdArray",
    "SsdModel",
    "ssd_array",
    "DEFAULT_LINE_BLOCKS",
    "ReadCache",
    "WriteBackCache",
    "Disk",
    "DiskModel",
    "DEFAULT_STRIPE_BLOCKS",
    "PhysicalOp",
    "Raid0",
    "Raid5",
    "RaidLayout",
]
