"""The storage array: spindles + RAID layout + controller caches.

A :class:`StorageArray` exports a single logical LUN.  The hypervisor
carves virtual-disk extents out of it (see
:mod:`repro.hypervisor.vdisk`), so multiple VMs naturally share the
spindles — the precondition for the paper's multi-VM interference
study (§3.7, §5.3).

Two presets reproduce Table 1 / §5.3:

* :func:`symmetrix` — RAID-5, very large read and write caches with
  aggressive prefetch.  On this box the dual-VM experiment shows no
  large latency change.
* :func:`clariion_cx3` — RAID-0 with a 2.5 GB read cache that can be
  disabled (``read_cache=False``), which is how the paper forced all
  I/Os to the spindles for Figure 6.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.engine import Engine, us
from .cache import ReadCache, WriteBackCache
from .disk import Disk, DiskModel
from .raid import PhysicalOp, Raid0, Raid5, RaidLayout

__all__ = ["StorageArray", "symmetrix", "clariion_cx3"]


class StorageArray:
    """A block target servicing logical accesses against a RAID group.

    Parameters
    ----------
    engine:
        The simulation engine.
    layout:
        RAID layout mapping logical extents to spindle operations.
    disk_model:
        Parameters for every spindle in the group.
    read_cache / write_cache:
        Optional controller caches.
    transport_us:
        Fixed fabric round-trip added to every command (the 4 Gb SAN
        in Table 1).
    """

    def __init__(self, engine: Engine, layout: RaidLayout,
                 disk_model: Optional[DiskModel] = None,
                 read_cache: Optional[ReadCache] = None,
                 write_cache: Optional[WriteBackCache] = None,
                 cache_hit_us: float = 120.0,
                 transport_us: float = 50.0,
                 link_mbps: float = 400.0,
                 destage_batch: int = 16,
                 destage_interval_us: float = 50_000.0,
                 disk_scheduling: str = "fifo",
                 name: str = "array"):
        self.engine = engine
        self.layout = layout
        self.name = name
        model = disk_model if disk_model is not None else DiskModel()
        self.disks: List[Disk] = [
            Disk(engine, model, name=f"{name}.disk{i}",
                 scheduling=disk_scheduling)
            for i in range(layout.ndisks)
        ]
        self.read_cache = read_cache
        self.write_cache = write_cache
        self.cache_hit_ns = us(cache_hit_us)
        self.transport_ns = us(transport_us)
        self.link_mbps = link_mbps
        self.capacity_blocks = layout.capacity_blocks(model.capacity_blocks)
        # Lazy, LBA-sorted destaging of write-cache contents: real
        # controllers sort dirty tracks before writing them back, which
        # is what keeps random-write destage from saturating spindles.
        self.destage_batch = destage_batch
        self.destage_interval_ns = us(destage_interval_us)
        self._destage_pending: List[tuple] = []  # (lba, nblocks)
        self._destage_armed = False
        # Counters.
        self.reads = 0
        self.writes = 0
        self.read_cache_hits = 0
        self.write_cache_hits = 0
        self.destage_batches = 0

    # ------------------------------------------------------------------
    def submit(self, lba: int, nblocks: int, is_read: bool,
               on_done: Callable[[], None]) -> None:
        """Service one logical access; ``on_done`` fires at completion."""
        if lba < 0 or lba + nblocks > self.capacity_blocks:
            raise ValueError(
                f"access [{lba}, {lba + nblocks}) outside LUN of "
                f"{self.capacity_blocks} blocks"
            )
        if is_read:
            self.reads += 1
            self._submit_read(lba, nblocks, on_done)
        else:
            self.writes += 1
            self._submit_write(lba, nblocks, on_done)

    def submit_batch(self, ops: List[tuple]) -> None:
        """Service a burst of ``(lba, nblocks, is_read, on_done)`` ops.

        Semantically a :meth:`submit` loop — every access still takes
        the full cache/RAID path in order — provided as the single
        entry point for initiators that generate their offered load in
        bursts (e.g. filling an outstanding-I/O budget at start-up).
        """
        for lba, nblocks, is_read, on_done in ops:
            self.submit(lba, nblocks, is_read, on_done)

    def _link_transfer_ns(self, nblocks: int) -> int:
        """Fabric transfer time for the payload (the 4 Gb SAN link) —
        why a 1 MB command takes visibly longer than a 64 KB one even
        when both are absorbed by cache (Figure 5(a))."""
        return int(nblocks * 512 / (self.link_mbps * 1e6) * 1e9)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _submit_read(self, lba: int, nblocks: int,
                     on_done: Callable[[], None]) -> None:
        cache = self.read_cache
        if cache is not None:
            if cache.lookup(lba, nblocks):
                self.read_cache_hits += 1
                self.engine.schedule(
                    self.cache_hit_ns + self._link_transfer_ns(nblocks),
                    on_done,
                )
                return
            prefetch_blocks = cache.prefetch_hint(lba)
        else:
            prefetch_blocks = None

        def demand_complete() -> None:
            if cache is not None:
                cache.insert(lba, nblocks)
            on_done()

        self._run_physical(self.layout.map(lba, nblocks, True), demand_complete)

        # Background prefetch: fetch ahead of the demand access and
        # populate the cache on completion; no one waits on it.
        if prefetch_blocks:
            start = lba + nblocks
            span = min(prefetch_blocks, self.capacity_blocks - start)
            if span > 0:
                def prefetch_complete() -> None:
                    assert cache is not None
                    cache.insert(start, span)

                self._run_physical(
                    self.layout.map(start, span, True), prefetch_complete
                )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _submit_write(self, lba: int, nblocks: int,
                      on_done: Callable[[], None]) -> None:
        nbytes = nblocks * 512
        if self.read_cache is not None:
            # Coherence: lines partially overwritten become stale and
            # are dropped; lines fully covered by the write hold the
            # new data and stay (or become) resident.
            self.read_cache.invalidate(lba, nblocks)
            self.read_cache.insert(lba, nblocks)
        if self.write_cache is not None and self.write_cache.accept(nbytes):
            self.write_cache_hits += 1
            self.engine.schedule(
                self.cache_hit_ns + self._link_transfer_ns(nblocks), on_done
            )
            self._destage_pending.append((lba, nblocks))
            if not self._destage_armed:
                self._destage_armed = True
                self.engine.schedule(self.destage_interval_ns,
                                     self._destage_tick)
            return
        self._run_physical(self.layout.map(lba, nblocks, False), on_done)

    def _destage_tick(self) -> None:
        """Write back a sorted batch of cached writes.

        Sorting by LBA keeps spindle seeks short (elevator order), and
        parity for cached writes is computed in the controller ("fast
        write"), so only the data and parity *writes* hit the disks —
        no read-modify-write reads.
        """
        self._destage_armed = False
        if not self._destage_pending:
            return
        self._destage_pending.sort(key=lambda entry: entry[0])
        batch = self._destage_pending[: self.destage_batch]
        del self._destage_pending[: self.destage_batch]
        self.destage_batches += 1
        for lba, nblocks in batch:
            nbytes = nblocks * 512
            ops = [
                op
                for op in self.layout.map(lba, nblocks, False)
                if not op.is_read
            ]

            def destage_complete(done_bytes: int = nbytes) -> None:
                assert self.write_cache is not None
                self.write_cache.destaged(done_bytes)

            self._run_physical(ops, destage_complete)
        if self._destage_pending:
            self._destage_armed = True
            self.engine.schedule(self.destage_interval_ns, self._destage_tick)

    # ------------------------------------------------------------------
    def _run_physical(self, ops: List[PhysicalOp],
                      on_all_done: Callable[[], None]) -> None:
        """Issue spindle ops; fire once all finish (+ transport time)."""
        remaining = [len(ops)]
        if remaining[0] == 0:
            self.engine.schedule(self.transport_ns, on_all_done)
            return

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self.engine.schedule(self.transport_ns, on_all_done)

        for op in ops:
            self.disks[op.disk_index].submit(
                op.lba, op.nblocks, op.is_read, one_done
            )

    # ------------------------------------------------------------------
    def total_disk_commands(self) -> int:
        """Spindle-level commands serviced (includes parity and prefetch)."""
        return sum(d.commands for d in self.disks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<StorageArray {self.name!r} disks={len(self.disks)} "
            f"r/w={self.reads}/{self.writes}>"
        )


# ----------------------------------------------------------------------
# Table 1 / §5.3 presets
# ----------------------------------------------------------------------
def symmetrix(engine: Engine, name: str = "symmetrix") -> StorageArray:
    """EMC Symmetrix-like box: RAID-5, very large caches, deep prefetch.

    §5.3: the dual-VM experiment showed no large latency change here,
    "likely due to the very large cache and the striping pattern".
    """
    return StorageArray(
        engine,
        layout=Raid5(ndisks=16),
        disk_model=DiskModel(),
        read_cache=ReadCache(
            capacity_bytes=32 * 1024**3, prefetch_lines=32
        ),
        write_cache=WriteBackCache(capacity_bytes=8 * 1024**3),
        name=name,
    )


def clariion_cx3(engine: Engine, read_cache: bool = True,
                 name: str = "cx3") -> StorageArray:
    """EMC CLARiiON CX3-like box: RAID-0, 2.5 GB read cache.

    ``read_cache=False`` reproduces the paper's forcing step: "we had
    to turn off the CX3 read cache forcing all I/Os to hit the disk"
    (§5.3) — the configuration behind Figure 6.
    """
    model = DiskModel(
        rpm=15_000,
        track_to_track_ms=0.3,
        full_stroke_ms=7.5,
        media_mbps=95.0,
    )
    return StorageArray(
        engine,
        layout=Raid0(ndisks=12),
        disk_model=model,
        read_cache=(
            ReadCache(capacity_bytes=int(2.5 * 1024**3), prefetch_lines=16)
            if read_cache
            else None
        ),
        write_cache=WriteBackCache(capacity_bytes=512 * 1024**2),
        name=name,
    )
