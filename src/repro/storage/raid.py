"""RAID striping layouts.

The reference testbed uses an EMC Symmetrix RAID-5 group and a
CLARiiON CX3 RAID-0 group (Table 1, §5.3).  A layout maps a logical
extent ``(lba, nblocks)`` on the exported LUN to per-spindle physical
operations; RAID-5 additionally produces the read-modify-write parity
traffic for small writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["PhysicalOp", "RaidLayout", "Raid0", "Raid5", "DEFAULT_STRIPE_BLOCKS"]

#: Default stripe chunk: 128 blocks = 64 KB per disk per stripe.
DEFAULT_STRIPE_BLOCKS = 128


@dataclass(frozen=True)
class PhysicalOp:
    """One operation on one spindle resulting from a logical access."""

    disk_index: int
    lba: int
    nblocks: int
    is_read: bool


class RaidLayout:
    """Base class: a striped layout over ``ndisks`` spindles."""

    def __init__(self, ndisks: int, stripe_blocks: int = DEFAULT_STRIPE_BLOCKS):
        if ndisks < 1:
            raise ValueError(f"need >= 1 disk, got {ndisks}")
        if stripe_blocks < 1:
            raise ValueError(f"stripe must be >= 1 block, got {stripe_blocks}")
        self.ndisks = ndisks
        self.stripe_blocks = stripe_blocks

    @property
    def data_disks(self) -> int:
        """Spindles holding data in each stripe row."""
        raise NotImplementedError

    def capacity_blocks(self, disk_capacity_blocks: int) -> int:
        """Exported LUN capacity given per-disk capacity."""
        return disk_capacity_blocks * self.data_disks

    def map(self, lba: int, nblocks: int, is_read: bool) -> List[PhysicalOp]:
        """Decompose a logical access into per-spindle operations."""
        raise NotImplementedError

    # Helper shared by subclasses: split a logical extent into
    # stripe-chunk-aligned pieces.
    def _chunks(self, lba: int, nblocks: int):
        remaining = nblocks
        current = lba
        while remaining > 0:
            offset_in_chunk = current % self.stripe_blocks
            span = min(remaining, self.stripe_blocks - offset_in_chunk)
            yield current, span
            current += span
            remaining -= span


class Raid0(RaidLayout):
    """Plain striping — the CLARiiON configuration in §5.3."""

    @property
    def data_disks(self) -> int:
        return self.ndisks

    def map(self, lba: int, nblocks: int, is_read: bool) -> List[PhysicalOp]:
        ops: List[PhysicalOp] = []
        for chunk_lba, span in self._chunks(lba, nblocks):
            stripe_index = chunk_lba // self.stripe_blocks
            disk = stripe_index % self.ndisks
            row = stripe_index // self.ndisks
            disk_lba = row * self.stripe_blocks + chunk_lba % self.stripe_blocks
            ops.append(PhysicalOp(disk, disk_lba, span, is_read))
        return ops


class Raid5(RaidLayout):
    """Left-asymmetric RAID-5 — the Symmetrix group in Table 1.

    Reads map like RAID-0 over ``ndisks - 1`` data chunks per row (the
    parity chunk rotates).  A *small* write expands into the classic
    read-modify-write: read old data + old parity, write new data +
    new parity — four physical ops per chunk, which is what makes
    RAID-5 write latency interesting to a characterization tool.
    """

    def __init__(self, ndisks: int, stripe_blocks: int = DEFAULT_STRIPE_BLOCKS):
        if ndisks < 3:
            raise ValueError(f"RAID-5 needs >= 3 disks, got {ndisks}")
        super().__init__(ndisks, stripe_blocks)

    @property
    def data_disks(self) -> int:
        return self.ndisks - 1

    def _locate(self, chunk_lba: int):
        """(data disk, parity disk, disk LBA) for a logical chunk."""
        stripe_index = chunk_lba // self.stripe_blocks
        row = stripe_index // self.data_disks
        position = stripe_index % self.data_disks
        parity_disk = (self.ndisks - 1) - (row % self.ndisks)
        data_disk = position if position < parity_disk else position + 1
        disk_lba = row * self.stripe_blocks + chunk_lba % self.stripe_blocks
        return data_disk, parity_disk, disk_lba

    def map(self, lba: int, nblocks: int, is_read: bool) -> List[PhysicalOp]:
        ops: List[PhysicalOp] = []
        for chunk_lba, span in self._chunks(lba, nblocks):
            data_disk, parity_disk, disk_lba = self._locate(chunk_lba)
            if is_read:
                ops.append(PhysicalOp(data_disk, disk_lba, span, True))
            else:
                # Read-modify-write: old data, old parity, new data,
                # new parity.
                ops.append(PhysicalOp(data_disk, disk_lba, span, True))
                ops.append(PhysicalOp(parity_disk, disk_lba, span, True))
                ops.append(PhysicalOp(data_disk, disk_lba, span, False))
                ops.append(PhysicalOp(parity_disk, disk_lba, span, False))
        return ops
