"""Array controller caches.

Two caches matter to the paper's results:

* The **read cache** with sequential prefetch.  Its presence is why the
  dual-VM experiment showed nothing on the Symmetrix ("likely due to
  the very large cache"), and disabling it on the CLARiiON CX3 is what
  exposed the 40x interference effect (§5.3).
* The **write-back cache**, which absorbs writes at cache latency and
  destages in the background ("problems with the write-back cache
  strategy" is one of the diagnoses §3.4 enables).

Both are modeled at cache-line granularity with LRU replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["ReadCache", "WriteBackCache", "DEFAULT_LINE_BLOCKS"]

#: Cache line size: 128 blocks = 64 KB, a typical array track size.
DEFAULT_LINE_BLOCKS = 128


class ReadCache:
    """LRU read cache with sequential-stream prefetch hinting.

    The cache stores line numbers (array LBA // line size).  A read is
    a hit only if *every* line it touches is resident.  The array asks
    :meth:`prefetch_hint` whether an access continues a recent stream;
    if so it fetches ahead and :meth:`insert`\\ s the lines on disk
    completion.
    """

    def __init__(self, capacity_bytes: int,
                 line_blocks: int = DEFAULT_LINE_BLOCKS,
                 prefetch_lines: int = 16,
                 stream_tracker_size: int = 64):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.line_blocks = line_blocks
        self.capacity_lines = max(1, capacity_bytes // (line_blocks * 512))
        self.prefetch_lines = prefetch_lines
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        # Recent access positions for sequential-stream detection.
        self._recent_ends: "OrderedDict[int, None]" = OrderedDict()
        self._stream_tracker_size = stream_tracker_size
        # Counters.
        self.hits = 0
        self.misses = 0
        self.prefetches = 0

    # ------------------------------------------------------------------
    def line_of(self, lba: int) -> int:
        """Cache line index containing block ``lba``."""
        return lba // self.line_blocks

    def lookup(self, lba: int, nblocks: int) -> bool:
        """Hit test for a read; updates LRU order and hit counters."""
        first = self.line_of(lba)
        last = self.line_of(lba + nblocks - 1)
        resident = all(line in self._lines for line in range(first, last + 1))
        if resident:
            for line in range(first, last + 1):
                self._lines.move_to_end(line)
            self.hits += 1
        else:
            self.misses += 1
        self._note_access(lba, nblocks)
        return resident

    def insert(self, lba: int, nblocks: int) -> None:
        """Make the lines *fully covered* by ``[lba, lba+nblocks)``
        resident.

        A line is only valid when all of its data is present, so a
        transfer smaller than a line populates nothing — the reason a
        4-8 KB random workload cannot warm a track-granular cache
        while large transfers (prefetch, inflated reads) can.
        """
        first_byte_line = self.line_of(lba)
        first = (
            first_byte_line
            if lba == first_byte_line * self.line_blocks
            else first_byte_line + 1
        )
        end = lba + nblocks
        last = self.line_of(end - 1)
        if end != (last + 1) * self.line_blocks:
            last -= 1
        for line in range(first, last + 1):
            if line in self._lines:
                self._lines.move_to_end(line)
            else:
                self._lines[line] = None
                if len(self._lines) > self.capacity_lines:
                    self._lines.popitem(last=False)

    def invalidate(self, lba: int, nblocks: int) -> None:
        """Drop lines overlapping a write (write-through invalidation)."""
        first = self.line_of(lba)
        last = self.line_of(lba + nblocks - 1)
        for line in range(first, last + 1):
            self._lines.pop(line, None)

    # ------------------------------------------------------------------
    def prefetch_hint(self, lba: int) -> Optional[int]:
        """If ``lba`` continues a recent stream, how many blocks to fetch
        ahead (from the end of the access); otherwise ``None``."""
        line = self.line_of(lba)
        if line in self._recent_ends or (line - 1) in self._recent_ends:
            self.prefetches += 1
            return self.prefetch_lines * self.line_blocks
        return None

    def _note_access(self, lba: int, nblocks: int) -> None:
        end_line = self.line_of(lba + nblocks - 1)
        self._recent_ends[end_line] = None
        self._recent_ends.move_to_end(end_line)
        while len(self._recent_ends) > self._stream_tracker_size:
            self._recent_ends.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReadCache lines={len(self._lines)}/{self.capacity_lines} "
            f"hit_rate={self.hit_rate:.2f}>"
        )


class WriteBackCache:
    """Bounded dirty-byte accounting for write-back behaviour.

    The array asks :meth:`accept` per write: if the dirty watermark
    allows, the write completes at cache latency and is destaged in
    the background (the array calls :meth:`destaged` when the backing
    disk write finishes).  When the cache is saturated, writes go
    straight to disk — the "cache capacity at the disk subsystem"
    failure mode §3.4 mentions.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.dirty_bytes = 0
        self.accepted = 0
        self.rejected = 0

    def accept(self, nbytes: int) -> bool:
        """Try to absorb a write of ``nbytes``."""
        if self.dirty_bytes + nbytes > self.capacity_bytes:
            self.rejected += 1
            return False
        self.dirty_bytes += nbytes
        self.accepted += 1
        return True

    def destaged(self, nbytes: int) -> None:
        """Background destage of ``nbytes`` finished."""
        self.dirty_bytes -= nbytes
        if self.dirty_bytes < 0:
            raise ValueError("destaged more bytes than were dirty")

    @property
    def fill_fraction(self) -> float:
        return self.dirty_bytes / self.capacity_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WriteBackCache dirty={self.dirty_bytes}/{self.capacity_bytes}>"
