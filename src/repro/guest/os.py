"""Guest operating system block layer.

The guest's own block layer sits *above* the instrumentation point:
§6 notes that "one thing that is not visible to the hypervisor is the
time spent in the guest OS queues."  :class:`GuestOS` therefore keeps
its own submission queue with its own depth limit; commands wait there
without the vSCSI layer (and thus the histograms) ever seeing them —
a property the test suite asserts explicitly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..hypervisor.vscsi import VScsiDevice
from ..scsi.request import ScsiRequest
from ..sim.engine import Engine

__all__ = ["GuestOS"]


class GuestOS:
    """A guest kernel's block device queue over one vSCSI target.

    Parameters
    ----------
    engine:
        Simulation engine.
    name:
        Guest identity ("solaris11", "linux-2.6.17", ...).
    device:
        The emulated SCSI target this guest's driver talks to.
    queue_depth:
        Maximum commands the guest driver keeps outstanding at the
        (virtual) adapter; more requests wait inside the guest.
    """

    def __init__(self, engine: Engine, name: str, device: VScsiDevice,
                 queue_depth: int = 32):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.engine = engine
        self.name = name
        self.device = device
        self.queue_depth = queue_depth
        self._inflight = 0
        self._waiting: Deque[Tuple[ScsiRequest, Optional[Callable]]] = deque()
        # Counters.
        self.submitted = 0
        self.completed = 0
        self.max_guest_queue = 0

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Commands this guest has issued to the adapter, not completed."""
        return self._inflight

    @property
    def guest_queued(self) -> int:
        """Commands waiting inside the guest (invisible to the hypervisor)."""
        return len(self._waiting)

    # ------------------------------------------------------------------
    def submit(self, is_read: bool, lba: int, nblocks: int,
               on_done: Optional[Callable[[ScsiRequest], None]] = None,
               tag: str = "") -> ScsiRequest:
        """Submit one block I/O; returns the request object."""
        request = ScsiRequest(is_read, lba, nblocks, tag=tag)
        self.submitted += 1
        if self._inflight >= self.queue_depth:
            self._waiting.append((request, on_done))
            if len(self._waiting) > self.max_guest_queue:
                self.max_guest_queue = len(self._waiting)
            return request
        self._send(request, on_done)
        return request

    def _send(self, request: ScsiRequest,
              on_done: Optional[Callable[[ScsiRequest], None]]) -> None:
        self._inflight += 1

        def complete(req: ScsiRequest) -> None:
            self._inflight -= 1
            self.completed += 1
            # Refill the adapter slot before the upper layer reacts.
            if self._waiting and self._inflight < self.queue_depth:
                next_request, next_done = self._waiting.popleft()
                self._send(next_request, next_done)
            if on_done is not None:
                on_done(req)

        request.on_complete(complete)
        self.device.issue(request)

    def drained(self) -> bool:
        """True when no I/O is pending anywhere in the guest."""
        return self._inflight == 0 and not self._waiting

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GuestOS {self.name!r} inflight={self._inflight} "
            f"guest_queued={len(self._waiting)}>"
        )
