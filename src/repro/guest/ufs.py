"""UFS (Solaris) filesystem model.

§4.1's control case: "UFS is issuing I/Os of sizes 4KB and 8KB which
is closer to the original data stream from Filebench OLTP" and the
seek histograms show randomness for both reads and writes — UFS "isn't
doing anything special".

The model captures that behaviour plus the two UFS properties that
make OLTP *slow* on it (the performance half of §4.1's comparison):

* **Update-in-place with 8 KB blocks, 4 KB page-granularity writes.**
  Reads fetch whole blocks (8 KB); page-aligned writes pass straight
  through (the directio path a database configuration uses), while
  unaligned writes read-modify-write the containing block.
* **The per-file writer lock.**  UFS serializes writers to a single
  file, so ten concurrent database writer threads make no more
  progress than one — the classic UFS-vs-database pathology that ZFS's
  range locking removes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .filesystem import BlockOp, FileHandle, Filesystem

__all__ = ["UFS"]


class UFS(Filesystem):
    """Update-in-place UFS: 8 KB blocks, 4 KB fragments, no remapping."""

    name = "ufs"
    default_block_bytes = 8192
    #: Sub-block transfer granularity (UFS fragments are 1 KB on disk;
    #: 4 KB is the page-aligned granularity Solaris actually issues).
    fragment_bytes = 4096
    #: UFS clusters contiguous I/O up to maxcontig (128 KB default).
    default_max_io_bytes = 128 * 1024

    def __init__(self, guest, region_blocks=None, block_bytes=None,
                 max_io_bytes=None, page_cache=None):
        super().__init__(
            guest,
            region_blocks=region_blocks,
            block_bytes=block_bytes,
            max_io_bytes=(
                max_io_bytes if max_io_bytes is not None
                else self.default_max_io_bytes
            ),
            page_cache=page_cache,
        )
        # Per-file writer-lock queues: file_id -> waiting thunks.  The
        # presence of a key means the lock is held.
        self._write_locks: Dict[int, Deque[Callable[[], None]]] = {}
        self.rmw_reads = 0

    # ------------------------------------------------------------------
    # Write path: per-file writer lock + sub-block read-modify-write
    # ------------------------------------------------------------------
    def write(self, handle: FileHandle, offset: int, nbytes: int,
              on_done: Optional[Callable[[], None]] = None,
              sync: bool = True) -> None:
        self._check_range(handle, offset, nbytes)

        def locked() -> None:
            self._locked_write(handle, offset, nbytes, on_done)

        queue = self._write_locks.get(handle.file_id)
        if queue is None:
            self._write_locks[handle.file_id] = deque()
            locked()
        else:
            queue.append(locked)

    def _locked_write(self, handle: FileHandle, offset: int, nbytes: int,
                      on_done: Optional[Callable[[], None]]) -> None:
        def release() -> None:
            queue = self._write_locks[handle.file_id]
            if queue:
                self.guest.engine.schedule(0, queue.popleft())
            else:
                del self._write_locks[handle.file_id]
            if on_done is not None:
                on_done()

        write_ops = self._subblock_ops(
            handle, offset, nbytes, False, granularity=self.fragment_bytes
        )
        unaligned = (
            offset % self.fragment_bytes != 0
            or (offset + nbytes) % self.fragment_bytes != 0
        )
        if unaligned:
            # A write that does not cover whole pages must read the
            # containing block(s) first to merge (read-modify-write).
            # Page-aligned database writes take the direct path.
            self.rmw_reads += 1
            read_ops = self._subblock_ops(
                handle, offset, nbytes, True, granularity=self.block_bytes
            )
            self._issue(read_ops, lambda: self._issue(write_ops, release))
        else:
            self._issue(write_ops, release)

    def _plan_read(self, handle: FileHandle, offset: int,
                   nbytes: int) -> List[BlockOp]:
        # Reads fetch whole filesystem blocks (a 4 KB application read
        # comes out as the containing 8 KB block) — this is where the
        # 8 KB half of Figure 2(a)'s 4K/8K mix comes from.
        return self._subblock_ops(
            handle, offset, nbytes, True, granularity=self.block_bytes
        )
