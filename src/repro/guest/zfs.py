"""ZFS filesystem model: copy-on-write, txg aggregation, vdev inflation.

§4.1's headline result: the identical Filebench OLTP stream that UFS
passes through at 4-8 KB comes out of ZFS as 80-128 KB I/Os, with the
*random writes turned into sequential writes*.  The paper traces this
to documented ZFS behaviour [17][18]: aggressive I/O scheduling plus a
copy-on-write allocator in the style of log-structured filesystems
[19].

The model implements the three responsible mechanisms:

1. **Transaction groups (txg).**  Asynchronous writes are buffered and
   flushed every ``txg_interval`` (5 s in contemporary ZFS).  At flush
   time all dirty blocks are *reallocated* at the sequential
   allocation frontier (COW — "blocks on disk containing data are
   never modified in place") and streamed out as large writes
   aggregated up to ``aggregate_bytes`` (128 KB).
2. **The intent log (ZIL).**  Synchronous writes commit immediately as
   sequential appends to a dedicated log region, then the data blocks
   still go out with the next txg.
3. **Vdev read inflation.**  Small reads are inflated to a large
   device-level read around the miss (the vdev cache historically
   inflated sub-16 KB reads), which is what pushes the *read* sizes
   seen by the hypervisor into the 80-128 KB bins while their
   placement stays random (Figure 3(d)).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..scsi.commands import SECTOR_BYTES
from ..sim.engine import seconds
from .filesystem import BlockOp, FileHandle, Filesystem

__all__ = ["ZFS", "ZIL_RECORD_HEADER_BYTES"]

#: Per-record intent-log overhead (lr_write_t header + checksums).
ZIL_RECORD_HEADER_BYTES = 256


class ZFS(Filesystem):
    """Copy-on-write ZFS model.

    Parameters beyond the base class:

    txg_interval_ns:
        Flush period for buffered writes (default 5 s).
    aggregate_bytes:
        Maximum size of one aggregated txg write (default 128 KB).
    inflate_threshold_bytes / inflate_bytes:
        Reads smaller than the threshold are inflated to a device-level
        read of ``inflate_bytes`` (defaults: 16 KB -> 128 KB).
    zil_bytes:
        Size of the intent-log region reserved at mount.
    dirty_max_bytes:
        Dirty-data ceiling that forces an early txg flush.
    """

    name = "zfs"
    default_block_bytes = 8192
    #: ZFS caches aggressively through the ARC; reads are buffered
    #: unless the caller forces direct.
    default_direct_reads = False

    def __init__(self, guest, region_blocks=None, block_bytes=None,
                 max_io_bytes: int = 128 * 1024,
                 txg_interval_ns: int = seconds(5),
                 aggregate_bytes: int = 128 * 1024,
                 inflate_threshold_bytes: int = 16 * 1024,
                 inflate_bytes: int = 128 * 1024,
                 zil_bytes: int = 64 * 1024 * 1024,
                 dirty_max_bytes: int = 64 * 1024 * 1024,
                 cache_bytes: int = 1024 * 1024 * 1024,
                 zil_commit_delay_us: float = 3_000.0):
        from ..storage.cache import ReadCache

        super().__init__(
            guest,
            region_blocks=region_blocks,
            block_bytes=block_bytes,
            max_io_bytes=max_io_bytes,
        )
        # The ARC + vdev cache rolled into one device-offset read
        # cache with lines matching the inflation unit: an inflated
        # miss makes its whole neighbourhood resident, and txg flushes
        # insert the freshly written runs, so rewritten data stays hot
        # across copy-on-write relocation.  This is the caching half
        # of ZFS's "very aggressive optimizations" (§4.1).
        self._read_cache = ReadCache(
            cache_bytes,
            line_blocks=max(8, inflate_bytes // SECTOR_BYTES),
        )
        self.txg_interval_ns = txg_interval_ns
        self.aggregate_bytes = aggregate_bytes
        self.inflate_threshold_bytes = inflate_threshold_bytes
        self.inflate_bytes = inflate_bytes
        self.dirty_max_bytes = dirty_max_bytes

        # Reserve the intent-log region up front.
        zil_sectors = zil_bytes // SECTOR_BYTES
        if zil_sectors > self.region_blocks // 4:
            raise ValueError("ZIL region would consume >25% of the pool")
        self._zil_start = self.region_blocks - zil_sectors
        self._zil_sectors = zil_sectors
        self._zil_cursor = 0
        self.region_blocks = self._zil_start  # data allocator excludes ZIL

        # COW allocation frontier: starts after the initially-created
        # files, wraps within [cow_start, region end).
        self._cow_start: Optional[int] = None
        self._cow_cursor = 0

        # Dirty blocks awaiting the next txg: (file, block index).
        self._dirty: Dict[Tuple[int, int], Tuple[FileHandle, int]] = {}
        self._dirty_bytes = 0
        self._txg_timer_armed = False

        # ZIL group-commit state.
        self.zil_commit_delay_ns = int(zil_commit_delay_us * 1_000)
        self._zil_waiters: List[Optional[Callable[[], None]]] = []
        self._zil_batch_bytes = 0
        self._zil_commit_inflight = False
        self._zil_commit_scheduled = False

        # Counters.
        self.txg_flushes = 0
        self.zil_writes = 0
        self.cow_wraps = 0

    # ------------------------------------------------------------------
    # Read path: the ARC/vdev cache + device-level inflation
    # ------------------------------------------------------------------
    def read(self, handle: FileHandle, offset: int, nbytes: int,
             on_done=None, direct=None) -> None:
        """Read through the ARC/vdev cache.

        A hit completes with no block I/O; a miss issues the inflated
        device read and inserts the whole inflated span, so the next
        small read nearby hits.
        """
        self._check_range(handle, offset, nbytes)
        if direct is None:
            direct = self.default_direct_reads
        if direct:
            self._issue(self._plan_read(handle, offset, nbytes), on_done)
            return
        base_ops = self._passthrough_ops(handle, offset, nbytes, is_read=True)
        if all(
            self._read_cache.lookup(lba, nsectors)
            for lba, nsectors, _is_read in base_ops
        ):
            if on_done is not None:
                self.guest.engine.schedule(0, on_done)
            return
        inflated = self._inflate(base_ops)

        def fill_and_done() -> None:
            for lba, nsectors, _is_read in inflated:
                self._read_cache.insert(lba, nsectors)
            if on_done is not None:
                on_done()

        self._issue(inflated, fill_and_done)

    def _plan_read(self, handle: FileHandle, offset: int,
                   nbytes: int) -> List[BlockOp]:
        return self._inflate(
            self._passthrough_ops(handle, offset, nbytes, is_read=True)
        )

    def _inflate(self, ops: List[BlockOp]) -> List[BlockOp]:
        """Inflate small reads to large aligned *device* reads around
        the accessed LBA — placement stays as random as the access,
        only the transfer grows."""
        inflate_sectors = self.inflate_bytes // SECTOR_BYTES
        threshold_sectors = self.inflate_threshold_bytes // SECTOR_BYTES
        limit = self.guest.device.vdisk.capacity_blocks
        inflated: List[BlockOp] = []
        for lba, nsectors, is_read in ops:
            if nsectors >= threshold_sectors:
                inflated.append((lba, nsectors, is_read))
                continue
            start = (lba // inflate_sectors) * inflate_sectors
            span = min(inflate_sectors, limit - start)
            if not inflated or inflated[-1][0] != start:
                inflated.append((start, span, True))
        return inflated

    # ------------------------------------------------------------------
    # Write path: ZIL group commit for sync, txg buffering for all
    # ------------------------------------------------------------------
    def write(self, handle: FileHandle, offset: int, nbytes: int,
              on_done=None, sync: bool = True) -> None:
        self._check_range(handle, offset, nbytes)
        self._mark_dirty(handle, offset, nbytes)
        if not sync:
            # Buffered: the caller continues immediately; the block
            # I/O happens at the next txg flush.
            if on_done is not None:
                self.guest.engine.schedule(0, on_done)
            return
        # Synchronous: join the current ZIL commit batch.  Concurrent
        # sync writers share one intent-log append (group commit), and
        # a short commit-delay window lets independent writers pile
        # into the same log block — so the log I/Os seen at the
        # hypervisor are few and large, not one-per-write.
        self._zil_waiters.append(on_done)
        self._zil_batch_bytes += nbytes + ZIL_RECORD_HEADER_BYTES
        if not self._zil_commit_inflight and not self._zil_commit_scheduled:
            self._zil_commit_scheduled = True
            self.guest.engine.schedule(self.zil_commit_delay_ns,
                                       self._zil_commit)

    def _zil_commit(self) -> None:
        self._zil_commit_scheduled = False
        waiters, self._zil_waiters = self._zil_waiters, []
        batch_bytes, self._zil_batch_bytes = self._zil_batch_bytes, 0
        if not waiters:
            self._zil_commit_inflight = False
            return
        self._zil_commit_inflight = True

        def committed() -> None:
            for waiter in waiters:
                if waiter is not None:
                    waiter()
            # Anything that arrived while this commit was in flight
            # forms the next batch (no extra delay: they have waited).
            self._zil_commit()

        self._issue(self._zil_append_ops(batch_bytes), committed)

    def _plan_write(self, handle: FileHandle, offset: int, nbytes: int,
                    sync: bool) -> List[BlockOp]:
        raise NotImplementedError(
            "ZFS overrides write(); planning is not a pure function here"
        )

    def _mark_dirty(self, handle: FileHandle, offset: int, nbytes: int) -> None:
        first = offset // self.block_bytes
        last = (offset + nbytes - 1) // self.block_bytes
        for index in range(first, last + 1):
            key = (handle.file_id, index)
            if key not in self._dirty:
                self._dirty[key] = (handle, index)
                self._dirty_bytes += self.block_bytes
        if self._dirty_bytes >= self.dirty_max_bytes:
            self._flush_txg()
        elif not self._txg_timer_armed:
            self._txg_timer_armed = True
            self.guest.engine.schedule(self.txg_interval_ns, self._txg_tick)

    def _zil_append_ops(self, nbytes: int) -> List[BlockOp]:
        """Sequential intent-log append, padded to 4 KB."""
        pad_sectors = max(8, -(-nbytes // 4096) * 8)
        if self._zil_cursor + pad_sectors > self._zil_sectors:
            self._zil_cursor = 0  # log wraps
        lba = self._zil_start + self._zil_cursor
        self._zil_cursor += pad_sectors
        self.zil_writes += 1
        return [(lba, pad_sectors, False)]

    # ------------------------------------------------------------------
    # Transaction-group flush
    # ------------------------------------------------------------------
    def _txg_tick(self) -> None:
        self._txg_timer_armed = False
        if self._dirty:
            self._flush_txg()

    def _flush_txg(self, on_done: Optional[Callable[[], None]] = None) -> None:
        """Reallocate all dirty blocks at the frontier and stream them."""
        dirty = list(self._dirty.values())
        self._dirty.clear()
        self._dirty_bytes = 0
        if not dirty:
            if on_done is not None:
                self.guest.engine.schedule(0, on_done)
            return
        self.txg_flushes += 1
        if self._cow_start is None:
            # First flush: everything allocated so far is frozen; COW
            # allocations cycle through the remaining free space.
            self._cow_start = self._alloc_cursor
            self._cow_cursor = self._cow_start
            if self.region_blocks - self._cow_start < len(dirty) * self.sectors_per_block:
                raise ValueError(
                    "ZFS pool too full for copy-on-write reallocation; "
                    "size the virtual disk larger than the file set"
                )

        # Allocate one contiguous run per txg (wrapping if needed),
        # remap the blocks, and emit aggregated sequential writes.
        total_sectors = len(dirty) * self.sectors_per_block
        if self._cow_cursor + total_sectors > self.region_blocks:
            self._cow_cursor = self._cow_start
            self.cow_wraps += 1
        base = self._cow_cursor
        self._cow_cursor += total_sectors

        for position, (handle, index) in enumerate(dirty):
            handle.blocks.remap(index, base + position * self.sectors_per_block)

        ops: List[BlockOp] = []
        max_sectors = self.aggregate_bytes // SECTOR_BYTES
        cursor = base
        remaining = total_sectors
        while remaining > 0:
            span = min(remaining, max_sectors)
            ops.append((cursor, span, False))
            cursor += span
            remaining -= span
        # Freshly written data stays hot: the flushed run becomes
        # resident at its new location, so copy-on-write relocation
        # does not cost future read misses.
        self._read_cache.insert(base, total_sectors)
        self._issue(ops, on_done)

    def sync(self, on_done: Optional[Callable[[], None]] = None) -> None:
        """Force a txg flush now (the ``zpool sync`` equivalent)."""
        self._flush_txg(on_done)

    @property
    def dirty_bytes(self) -> int:
        """Bytes currently buffered awaiting the next txg."""
        return self._dirty_bytes
