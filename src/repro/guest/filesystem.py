"""Filesystem substrate: files, block maps, and the planning hooks.

The paper's central demonstration (§4.1) is that *the filesystem* —
not the application — determines the block-level workload the
hypervisor sees: the same Filebench OLTP stream looks completely
different through UFS and ZFS.  To reproduce that, filesystems here
are **transformation layers**: an application calls
``read``/``write``/``append`` on files, and each filesystem plans the
resulting block I/Os (sizing, placement, copy-on-write remapping,
journaling) before handing them to the guest block layer.

The base class provides allocation, offset→block mapping and an
in-place pass-through plan; concrete models (:mod:`~repro.guest.ufs`,
:mod:`~repro.guest.zfs`, :mod:`~repro.guest.ext3`,
:mod:`~repro.guest.ntfs`) override the planning hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..scsi.commands import SECTOR_BYTES
from .os import GuestOS
from .pagecache import PageCache

__all__ = ["BlockMap", "FileHandle", "Filesystem", "BlockOp"]

#: One planned block operation: (lba, nblocks, is_read).
BlockOp = Tuple[int, int, bool]


class BlockMap:
    """Mapping from file-system block index to virtual-disk LBA.

    Files start out contiguous (one base LBA); a copy-on-write
    filesystem promotes the map to an explicit per-block table the
    first time it remaps a block.
    """

    __slots__ = ("_base_lba", "nblocks_fs", "sectors_per_block", "_explicit")

    def __init__(self, base_lba: int, nblocks_fs: int, sectors_per_block: int):
        self._base_lba = base_lba
        self.nblocks_fs = nblocks_fs
        self.sectors_per_block = sectors_per_block
        self._explicit: Optional[List[int]] = None

    @property
    def is_contiguous(self) -> bool:
        return self._explicit is None

    def lba_of(self, index: int) -> int:
        """Virtual-disk LBA of file-system block ``index``."""
        if not 0 <= index < self.nblocks_fs:
            raise IndexError(f"fs block {index} out of {self.nblocks_fs}")
        if self._explicit is not None:
            return self._explicit[index]
        return self._base_lba + index * self.sectors_per_block

    def remap(self, index: int, lba: int) -> None:
        """Point block ``index`` at a new location (COW)."""
        if self._explicit is None:
            self._explicit = [
                self._base_lba + i * self.sectors_per_block
                for i in range(self.nblocks_fs)
            ]
        if not 0 <= index < self.nblocks_fs:
            raise IndexError(f"fs block {index} out of {self.nblocks_fs}")
        self._explicit[index] = lba

    def runs(self, first: int, count: int) -> Iterator[Tuple[int, int]]:
        """Coalesce blocks ``[first, first+count)`` into (lba, sectors)
        runs of physically contiguous placement."""
        if count <= 0:
            return
        run_lba = self.lba_of(first)
        run_sectors = self.sectors_per_block
        expected = run_lba + self.sectors_per_block
        for index in range(first + 1, first + count):
            lba = self.lba_of(index)
            if lba == expected:
                run_sectors += self.sectors_per_block
            else:
                yield run_lba, run_sectors
                run_lba = lba
                run_sectors = self.sectors_per_block
            expected = lba + self.sectors_per_block
        yield run_lba, run_sectors


class FileHandle:
    """One file: size, identity and its block map."""

    _next_id = 0

    def __init__(self, name: str, size_bytes: int, block_map: BlockMap,
                 block_bytes: int):
        self.file_id = FileHandle._next_id
        FileHandle._next_id += 1
        self.name = name
        self.size_bytes = size_bytes
        self.blocks = block_map
        self.block_bytes = block_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FileHandle {self.name!r} {self.size_bytes} B>"


class Filesystem:
    """Base filesystem: contiguous allocation, pass-through planning.

    Parameters
    ----------
    guest:
        The guest block layer to issue planned I/Os through.
    region_blocks:
        Size of the disk region this filesystem manages, in sectors
        (defaults to the whole virtual disk).
    block_bytes:
        Filesystem allocation unit.
    max_io_bytes:
        Largest single block I/O the filesystem will issue; larger
        transfers are split (every real FS has such a clamp).
    page_cache:
        Optional guest page cache consulted for non-direct reads.
    """

    name = "fs"
    default_block_bytes = 4096
    #: Whether ``read()`` bypasses the page cache when the caller does
    #: not say.  Database-style filesystem configurations (UFS with
    #: directio) keep True; cache-aggressive filesystems (ZFS's ARC)
    #: set False.
    default_direct_reads = True

    def __init__(self, guest: GuestOS, region_blocks: Optional[int] = None,
                 block_bytes: Optional[int] = None,
                 max_io_bytes: int = 1 << 20,
                 page_cache: Optional[PageCache] = None):
        self.guest = guest
        self.block_bytes = block_bytes or self.default_block_bytes
        if self.block_bytes % SECTOR_BYTES:
            raise ValueError(
                f"block size {self.block_bytes} not a sector multiple"
            )
        self.sectors_per_block = self.block_bytes // SECTOR_BYTES
        capacity = guest.device.vdisk.capacity_blocks
        self.region_blocks = region_blocks if region_blocks is not None else capacity
        if self.region_blocks > capacity:
            raise ValueError("filesystem region larger than the virtual disk")
        self.max_io_bytes = max_io_bytes
        self.page_cache = page_cache
        self._files: Dict[str, FileHandle] = {}
        self._alloc_cursor = 0  # sector offset of the next free block

    # ------------------------------------------------------------------
    # Namespace and allocation
    # ------------------------------------------------------------------
    def create_file(self, name: str, size_bytes: int) -> FileHandle:
        """Create a file with all blocks allocated contiguously."""
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        if size_bytes < 1:
            raise ValueError(f"file size must be >= 1 byte, got {size_bytes}")
        nblocks_fs = -(-size_bytes // self.block_bytes)
        base_lba = self._allocate(nblocks_fs)
        handle = FileHandle(
            name,
            size_bytes,
            BlockMap(base_lba, nblocks_fs, self.sectors_per_block),
            self.block_bytes,
        )
        self._files[name] = handle
        return handle

    def open(self, name: str) -> FileHandle:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise KeyError(
                f"no file {name!r} in {self.name}; have {sorted(self._files)}"
            ) from None

    def files(self) -> List[FileHandle]:
        return list(self._files.values())

    def _allocate(self, nblocks_fs: int) -> int:
        """Carve ``nblocks_fs`` filesystem blocks; returns the base LBA."""
        sectors = nblocks_fs * self.sectors_per_block
        if self._alloc_cursor + sectors > self.region_blocks:
            raise ValueError(
                f"filesystem {self.name!r} out of space "
                f"(cursor={self._alloc_cursor}, need={sectors})"
            )
        base = self._alloc_cursor
        self._alloc_cursor += sectors
        return base

    @property
    def free_sectors(self) -> int:
        return self.region_blocks - self._alloc_cursor

    # ------------------------------------------------------------------
    # Application-facing operations
    # ------------------------------------------------------------------
    def read(self, handle: FileHandle, offset: int, nbytes: int,
             on_done: Optional[Callable[[], None]] = None,
             direct: Optional[bool] = None) -> None:
        """Read ``nbytes`` at ``offset``; ``on_done`` fires when all the
        resulting block I/Os complete.

        ``direct=None`` defers to the filesystem's
        :attr:`default_direct_reads` policy.
        """
        self._check_range(handle, offset, nbytes)
        if direct is None:
            direct = self.default_direct_reads
        if not direct and self.page_cache is not None:
            missing = self.page_cache.lookup(handle.file_id, offset, nbytes)
            if not missing:
                # Fully cached: complete without any block I/O.
                if on_done is not None:
                    self.guest.engine.schedule(0, on_done)
                return
            page = self.page_cache.page_bytes
            first_missing = missing[0] * page
            span = (missing[-1] + 1) * page - first_missing
            span = min(span, handle.size_bytes - first_missing)
            ops = self._plan_read(handle, first_missing, span)

            def fill_and_done() -> None:
                assert self.page_cache is not None
                self.page_cache.fill(handle.file_id, missing)
                if on_done is not None:
                    on_done()

            self._issue(ops, fill_and_done)
            return
        self._issue(self._plan_read(handle, offset, nbytes), on_done)

    def write(self, handle: FileHandle, offset: int, nbytes: int,
              on_done: Optional[Callable[[], None]] = None,
              sync: bool = True) -> None:
        """Write ``nbytes`` at ``offset``.

        ``sync=True`` completes when the data is on stable storage;
        ``sync=False`` lets a buffering filesystem defer the block I/O
        (the base class has no buffering, so both behave alike).
        """
        self._check_range(handle, offset, nbytes)
        if self.page_cache is not None:
            # Written data becomes readable from the cache; dirtiness
            # is each filesystem's own business (txg buffers, journals)
            # so the pages are inserted clean.
            page = self.page_cache.page_bytes
            first = offset // page
            last = (offset + nbytes - 1) // page
            self.page_cache.fill(handle.file_id, list(range(first, last + 1)))
        self._issue(self._plan_write(handle, offset, nbytes, sync), on_done)

    def _check_range(self, handle: FileHandle, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 1:
            raise ValueError(f"bad range offset={offset} nbytes={nbytes}")
        if offset + nbytes > handle.size_bytes:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) beyond EOF of "
                f"{handle.name!r} ({handle.size_bytes} B)"
            )

    # ------------------------------------------------------------------
    # Planning hooks (overridden by concrete filesystems)
    # ------------------------------------------------------------------
    def _plan_read(self, handle: FileHandle, offset: int,
                   nbytes: int) -> List[BlockOp]:
        """Default: read the covering blocks in place."""
        return self._passthrough_ops(handle, offset, nbytes, is_read=True)

    def _plan_write(self, handle: FileHandle, offset: int, nbytes: int,
                    sync: bool) -> List[BlockOp]:
        """Default: write the covering blocks in place."""
        return self._passthrough_ops(handle, offset, nbytes, is_read=False)

    def _passthrough_ops(self, handle: FileHandle, offset: int, nbytes: int,
                         is_read: bool) -> List[BlockOp]:
        """Map a byte range to block-aligned I/Os, split at max_io_bytes."""
        return self._subblock_ops(
            handle, offset, nbytes, is_read, granularity=self.block_bytes
        )

    def _subblock_ops(self, handle: FileHandle, offset: int, nbytes: int,
                      is_read: bool, granularity: int) -> List[BlockOp]:
        """Map a byte range to I/Os aligned at ``granularity`` bytes.

        ``granularity`` may be smaller than the filesystem block size
        (UFS fragments); physically contiguous spans are coalesced and
        then split at ``max_io_bytes``.
        """
        if granularity % SECTOR_BYTES:
            raise ValueError(f"granularity {granularity} not sector-aligned")
        start_byte = (offset // granularity) * granularity
        end_byte = -(-(offset + nbytes) // granularity) * granularity
        allocated = handle.blocks.nblocks_fs * self.block_bytes
        end_byte = min(end_byte, allocated)

        # Walk filesystem blocks, emitting sector-accurate pieces.
        pieces: List[Tuple[int, int]] = []  # (lba, nsectors)
        cursor = start_byte
        while cursor < end_byte:
            index = cursor // self.block_bytes
            block_start = index * self.block_bytes
            span = min(end_byte, block_start + self.block_bytes) - cursor
            lba = handle.blocks.lba_of(index) + (
                (cursor - block_start) // SECTOR_BYTES
            )
            if pieces and pieces[-1][0] + pieces[-1][1] == lba:
                pieces[-1] = (pieces[-1][0], pieces[-1][1] + span // SECTOR_BYTES)
            else:
                pieces.append((lba, span // SECTOR_BYTES))
            cursor += span

        ops: List[BlockOp] = []
        max_sectors = max(1, self.max_io_bytes // SECTOR_BYTES)
        for lba, nsectors in pieces:
            while nsectors > 0:
                span = min(nsectors, max_sectors)
                ops.append((lba, span, is_read))
                lba += span
                nsectors -= span
        return ops

    # ------------------------------------------------------------------
    # Issue helpers
    # ------------------------------------------------------------------
    def _issue(self, ops: List[BlockOp],
               on_done: Optional[Callable[[], None]]) -> None:
        """Issue planned ops through the guest; join completions."""
        if not ops:
            if on_done is not None:
                self.guest.engine.schedule(0, on_done)
            return
        remaining = [len(ops)]

        def one_done(_request: object) -> None:
            remaining[0] -= 1
            if remaining[0] == 0 and on_done is not None:
                on_done()

        for lba, nblocks, is_read in ops:
            self.guest.submit(is_read, lba, nblocks, one_done, tag=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} files={len(self._files)} "
            f"cursor={self._alloc_cursor}/{self.region_blocks}>"
        )
