"""ext3 filesystem model (data=ordered, the Linux default).

§4.2 runs DBT-2/PostgreSQL "on a single ext3 filesystem formatted
with default options".  Two ordered-mode behaviours shape Figure 4:

* **Synchronous writes** (PostgreSQL's O_DSYNC WAL) pass straight
  through, in place, at 4 KB block granularity — aligned 8 KB pages
  coalesce back to single 8 KB commands (Figure 4(b) is "almost
  exclusively 8K").
* **Buffered data writes** sit in the page cache until the periodic
  journal commit (5 s in the kernel the paper used) flushes them in
  one burst.  The burst floods the guest's SCSI queue, which is why
  the hypervisor observes a near-constant ~32 outstanding writes
  during writeback (Figure 4(c)) and a multi-second I/O-rate rhythm
  (Figure 4(d)).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..scsi.commands import SECTOR_BYTES
from ..sim.engine import seconds
from .filesystem import BlockOp, FileHandle, Filesystem

__all__ = ["Ext3"]


class Ext3(Filesystem):
    """Ordered-mode ext3: buffered data + a journal, 4 KB blocks."""

    name = "ext3"
    default_block_bytes = 4096
    #: Linux reads through the page cache unless O_DIRECT is used.
    default_direct_reads = False

    def __init__(self, guest, region_blocks=None, block_bytes=None,
                 max_io_bytes: int = 128 * 1024,
                 journal_bytes: int = 128 * 1024 * 1024,
                 commit_interval_ns: int = seconds(5),
                 commit_blocks: int = 4,
                 page_cache=None):
        super().__init__(
            guest,
            region_blocks=region_blocks,
            block_bytes=block_bytes,
            max_io_bytes=max_io_bytes,
            page_cache=page_cache,
        )
        journal_sectors = journal_bytes // SECTOR_BYTES
        if journal_sectors >= self.region_blocks:
            raise ValueError("journal larger than the filesystem region")
        # Journal lives at the end of the region; the data allocator
        # never reaches it.
        self._journal_start = self.region_blocks - journal_sectors
        self._journal_sectors = journal_sectors
        self._journal_cursor = 0
        self.region_blocks = self._journal_start
        self.commit_interval_ns = commit_interval_ns
        self.commit_blocks = commit_blocks
        # Buffered (not yet written back) data blocks: insertion order
        # is dirtying order, which the flush preserves.
        self._dirty_data: Dict[Tuple[int, int], FileHandle] = {}
        self._commit_timer_armed = False
        self.journal_commits = 0
        self.data_flushes = 0

    # ------------------------------------------------------------------
    def write(self, handle: FileHandle, offset: int, nbytes: int,
              on_done: Optional[Callable[[], None]] = None,
              sync: bool = True) -> None:
        self._check_range(handle, offset, nbytes)
        if sync:
            # O_DSYNC / fsync path: in place, immediately, and the
            # journal will note the metadata at the next commit.
            self._arm_commit()
            self._issue(
                self._passthrough_ops(handle, offset, nbytes, is_read=False),
                on_done,
            )
            return
        # Buffered: remember the dirty blocks; the caller continues
        # immediately and the block I/O happens at journal commit.
        first = offset // self.block_bytes
        last = (offset + nbytes - 1) // self.block_bytes
        for index in range(first, last + 1):
            self._dirty_data[(handle.file_id, index)] = handle
        self._arm_commit()
        if on_done is not None:
            self.guest.engine.schedule(0, on_done)

    def _plan_write(self, handle: FileHandle, offset: int, nbytes: int,
                    sync: bool) -> List[BlockOp]:
        raise NotImplementedError(
            "Ext3 overrides write(); planning is not a pure function here"
        )

    # ------------------------------------------------------------------
    # Journal commit and data writeback
    # ------------------------------------------------------------------
    def _arm_commit(self) -> None:
        if not self._commit_timer_armed:
            self._commit_timer_armed = True
            self.guest.engine.schedule(self.commit_interval_ns,
                                       self._commit_tick)

    def _commit_tick(self) -> None:
        self._commit_timer_armed = False
        self._flush_data()
        # Descriptor + metadata blocks + commit record, appended
        # sequentially to the journal (wrapping).
        nblocks_fs = self.commit_blocks + 2
        sectors = nblocks_fs * self.sectors_per_block
        if self._journal_cursor + sectors > self._journal_sectors:
            self._journal_cursor = 0
        lba = self._journal_start + self._journal_cursor
        self._journal_cursor += sectors
        self.journal_commits += 1
        self._issue([(lba, sectors, False)], None)

    def _flush_data(self, on_done: Optional[Callable[[], None]] = None) -> None:
        """Write back all buffered data blocks (ordered-mode flush).

        Blocks are issued in dirtying order with physically adjacent
        blocks coalesced — one submission burst, throttled only by the
        guest's SCSI queue depth.
        """
        dirty = list(self._dirty_data.items())
        self._dirty_data.clear()
        if not dirty:
            if on_done is not None:
                self.guest.engine.schedule(0, on_done)
            return
        self.data_flushes += 1
        ops: List[BlockOp] = []
        for (_file_id, index), handle in dirty:
            lba = handle.blocks.lba_of(index)
            if (
                ops
                and ops[-1][0] + ops[-1][1] == lba
                and (ops[-1][1] + self.sectors_per_block) * SECTOR_BYTES
                <= self.max_io_bytes
            ):
                ops[-1] = (ops[-1][0], ops[-1][1] + self.sectors_per_block,
                           False)
            else:
                ops.append((lba, self.sectors_per_block, False))
        self._issue(ops, on_done)

    def sync(self, on_done: Optional[Callable[[], None]] = None) -> None:
        """Force an immediate data writeback (the ``sync`` command)."""
        self._flush_data(on_done)

    @property
    def dirty_data_blocks(self) -> int:
        """Buffered blocks awaiting the next journal commit."""
        return len(self._dirty_data)
