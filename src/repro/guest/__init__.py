"""Guest OS substrate: block layer, page cache, filesystem models."""

from .ext3 import Ext3
from .filesystem import BlockMap, BlockOp, FileHandle, Filesystem
from .ntfs import (
    NTFS,
    CopyEngineProfile,
    VISTA_COPY_ENGINE,
    XP_COPY_ENGINE,
)
from .os import GuestOS
from .pagecache import DEFAULT_PAGE_BYTES, PageCache
from .ufs import UFS
from .zfs import ZFS

__all__ = [
    "Ext3",
    "BlockMap",
    "BlockOp",
    "FileHandle",
    "Filesystem",
    "NTFS",
    "CopyEngineProfile",
    "VISTA_COPY_ENGINE",
    "XP_COPY_ENGINE",
    "GuestOS",
    "DEFAULT_PAGE_BYTES",
    "PageCache",
    "UFS",
    "ZFS",
]
