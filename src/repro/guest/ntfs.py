"""NTFS filesystem model, with the XP and Vista copy-engine profiles.

§4.3 compares the same large-file copy on Windows XP Professional and
Windows Vista Enterprise: "The copy application in Microsoft Windows
XP Pro is issuing I/Os of size 64K whereas in Microsoft Vista
Enterprise, I/Os are primarily 1MB in size."  The filesystem itself is
an in-place allocator; what differs between the two OS generations is
the copy engine's transfer size and pipeline depth, captured here as
:class:`CopyEngineProfile` presets consumed by
:mod:`repro.workloads.filecopy`.

NTFS also charges a small periodic Master File Table (MFT) update —
a 4 KB metadata write near the front of the volume every
``mft_update_every`` data operations — so the copy workload shows the
occasional long seek a real NTFS volume exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..scsi.commands import SECTOR_BYTES
from .filesystem import BlockOp, FileHandle, Filesystem

__all__ = ["NTFS", "CopyEngineProfile", "XP_COPY_ENGINE", "VISTA_COPY_ENGINE"]


@dataclass(frozen=True)
class CopyEngineProfile:
    """How an OS generation's CopyFile implementation moves data."""

    name: str
    chunk_bytes: int          # transfer size per read/write
    pipeline_depth: int       # concurrent chunks in flight

    @property
    def chunk_sectors(self) -> int:
        return self.chunk_bytes // SECTOR_BYTES


#: Windows XP Professional: 64 KB chunks, shallow pipeline.
XP_COPY_ENGINE = CopyEngineProfile(name="xp", chunk_bytes=64 * 1024,
                                   pipeline_depth=2)

#: Windows Vista Enterprise: 1 MB chunks, deeper pipeline.
VISTA_COPY_ENGINE = CopyEngineProfile(name="vista", chunk_bytes=1024 * 1024,
                                      pipeline_depth=4)


class NTFS(Filesystem):
    """In-place NTFS: 4 KB clusters plus periodic MFT metadata writes."""

    name = "ntfs"
    default_block_bytes = 4096

    def __init__(self, guest, region_blocks=None, block_bytes=None,
                 max_io_bytes: int = 1024 * 1024,
                 mft_bytes: int = 16 * 1024 * 1024,
                 mft_update_every: int = 256):
        super().__init__(
            guest,
            region_blocks=region_blocks,
            block_bytes=block_bytes,
            max_io_bytes=max_io_bytes,
        )
        # MFT zone at the front of the volume; data allocation starts
        # after it.
        self._mft_sectors = mft_bytes // SECTOR_BYTES
        if self._mft_sectors >= self.region_blocks:
            raise ValueError("MFT zone larger than the volume")
        self._alloc_cursor = self._mft_sectors
        self._mft_cursor = 0
        self.mft_update_every = mft_update_every
        self._ops_since_mft = 0
        self.mft_updates = 0

    # ------------------------------------------------------------------
    def _plan_write(self, handle: FileHandle, offset: int, nbytes: int,
                    sync: bool) -> List[BlockOp]:
        ops = self._passthrough_ops(handle, offset, nbytes, is_read=False)
        return ops + self._maybe_mft_update()

    def _plan_read(self, handle: FileHandle, offset: int,
                   nbytes: int) -> List[BlockOp]:
        ops = self._passthrough_ops(handle, offset, nbytes, is_read=True)
        return ops + self._maybe_mft_update()

    def _maybe_mft_update(self) -> List[BlockOp]:
        self._ops_since_mft += 1
        if self._ops_since_mft < self.mft_update_every:
            return []
        self._ops_since_mft = 0
        self.mft_updates += 1
        sectors = 4096 // SECTOR_BYTES
        if self._mft_cursor + sectors > self._mft_sectors:
            self._mft_cursor = 0
        lba = self._mft_cursor
        self._mft_cursor += sectors
        return [(lba, sectors, False)]
