"""Guest page / buffer cache model.

§3.6 leans on the existence of a guest buffer cache ("Assuming the
guest OS has a buffer cache, reuse distances will be non-trivially
long"), and the workloads differ in how much caching happens above the
block layer.  This is a straightforward LRU page cache with dirty-page
tracking; filesystems consult it before issuing block reads and use it
to absorb buffered writes until writeback.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Set, Tuple

__all__ = ["PageCache", "DEFAULT_PAGE_BYTES"]

#: 4 KiB pages, the guest kernels' common denominator.
DEFAULT_PAGE_BYTES = 4096


class PageCache:
    """LRU page cache keyed by (file_id, page_index)."""

    def __init__(self, capacity_bytes: int,
                 page_bytes: int = DEFAULT_PAGE_BYTES):
        if capacity_bytes < page_bytes:
            raise ValueError(
                f"capacity {capacity_bytes} smaller than one page "
                f"({page_bytes})"
            )
        self.page_bytes = page_bytes
        self.capacity_pages = capacity_bytes // page_bytes
        self._pages: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evicted_dirty = 0

    # ------------------------------------------------------------------
    def _pages_of(self, offset: int, nbytes: int) -> range:
        first = offset // self.page_bytes
        last = (offset + nbytes - 1) // self.page_bytes
        return range(first, last + 1)

    def lookup(self, file_id: int, offset: int, nbytes: int) -> List[int]:
        """Return the page indices of ``[offset, offset+nbytes)`` that
        MISS; hits are LRU-touched and counted."""
        missing: List[int] = []
        for page in self._pages_of(offset, nbytes):
            key = (file_id, page)
            if key in self._pages:
                self._pages.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
                missing.append(page)
        return missing

    def fill(self, file_id: int, pages: List[int]) -> List[Tuple[int, int]]:
        """Insert clean pages; returns evicted dirty (file_id, page)."""
        return self._insert(file_id, pages, dirty=False)

    def write(self, file_id: int, offset: int, nbytes: int) -> List[Tuple[int, int]]:
        """Buffer a write: mark pages dirty; returns evicted dirty pages."""
        return self._insert(
            file_id, list(self._pages_of(offset, nbytes)), dirty=True
        )

    def _insert(self, file_id: int, pages: List[int],
                dirty: bool) -> List[Tuple[int, int]]:
        evicted: List[Tuple[int, int]] = []
        for page in pages:
            key = (file_id, page)
            if key in self._pages:
                self._pages[key] = self._pages[key] or dirty
                self._pages.move_to_end(key)
            else:
                self._pages[key] = dirty
                if len(self._pages) > self.capacity_pages:
                    old_key, old_dirty = self._pages.popitem(last=False)
                    if old_dirty:
                        self.evicted_dirty += 1
                        evicted.append(old_key)
        return evicted

    # ------------------------------------------------------------------
    def dirty_pages(self) -> Set[Tuple[int, int]]:
        """All currently dirty (file_id, page) keys."""
        return {key for key, dirty in self._pages.items() if dirty}

    def clean(self, file_id: int, page: int) -> None:
        """Mark a page clean after writeback (no-op if evicted)."""
        key = (file_id, page)
        if key in self._pages:
            self._pages[key] = False

    def invalidate_file(self, file_id: int) -> None:
        """Drop every page of a file (e.g. on delete)."""
        doomed = [key for key in self._pages if key[0] == file_id]
        for key in doomed:
            del self._pages[key]

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PageCache pages={len(self._pages)}/{self.capacity_pages} "
            f"hit_rate={self.hit_rate:.2f}>"
        )
