"""ESX-like hypervisor substrate: VMs, virtual disks, vSCSI emulation."""

from .esx import EsxServer
from .vdisk import VirtualDisk
from .vm import VirtualMachine
from .vscsi import VScsiDevice

__all__ = ["EsxServer", "VirtualDisk", "VirtualMachine", "VScsiDevice"]
