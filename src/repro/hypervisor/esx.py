"""The ESX-like host: VMs, virtual disks, the stats service.

:class:`EsxServer` wires everything together the way Figure 1 of the
paper draws it: virtual machines on top, the thin hypervisor layer
(vSCSI emulation + the histogram service + tracing) in the middle,
and physical storage below.  It also owns extent allocation on the
backing LUNs, so creating several virtual disks on one array places
them side by side — the sharing that drives §3.7/§5.3.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.service import HistogramService
from ..sim.engine import Engine
from ..sim.randomness import RandomSource
from ..storage.array import StorageArray
from .vdisk import VirtualDisk
from .vm import VirtualMachine
from .vscsi import VScsiDevice

__all__ = ["EsxServer"]


class EsxServer:
    """A simulated ESX host.

    Typical setup::

        engine = Engine()
        esx = EsxServer(engine)
        array = esx.add_array(clariion_cx3(engine, read_cache=False))
        vm = esx.create_vm("vm1")
        esx.create_vdisk(vm, "scsi0:0", array, capacity_bytes=6 * 1024**3)
        esx.stats.enable()
    """

    def __init__(self, engine: Engine, seed: int = 0,
                 default_device_queue_depth: Optional[int] = 64):
        self.engine = engine
        self.random = RandomSource(seed)
        self.stats = HistogramService()
        self.default_device_queue_depth = default_device_queue_depth
        self._vms: Dict[str, VirtualMachine] = {}
        self._arrays: Dict[str, StorageArray] = {}
        self._next_extent: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Inventory
    # ------------------------------------------------------------------
    def add_array(self, array: StorageArray) -> StorageArray:
        """Register a storage array (LUN) with the host."""
        if array.name in self._arrays:
            raise ValueError(f"array {array.name!r} already registered")
        self._arrays[array.name] = array
        self._next_extent[array.name] = 0
        return array

    def create_vm(self, name: str) -> VirtualMachine:
        """Create and register a VM."""
        if name in self._vms:
            raise ValueError(f"VM {name!r} already exists")
        vm = VirtualMachine(name)
        self._vms[name] = vm
        return vm

    def vm(self, name: str) -> VirtualMachine:
        """Look up a VM by name."""
        try:
            return self._vms[name]
        except KeyError:
            raise KeyError(
                f"no VM {name!r}; known: {sorted(self._vms)}"
            ) from None

    def array(self, name: str) -> StorageArray:
        """Look up an array by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(
                f"no array {name!r}; known: {sorted(self._arrays)}"
            ) from None

    # ------------------------------------------------------------------
    # Virtual disk provisioning
    # ------------------------------------------------------------------
    def create_vdisk(self, vm: VirtualMachine, vdisk_name: str,
                     array: StorageArray, capacity_bytes: int,
                     device_queue_depth: Optional[int] = None) -> VScsiDevice:
        """Carve an extent off ``array`` and attach it to ``vm``.

        Extents are allocated contiguously in creation order, so two
        virtual disks on one array are neighbours on the spindles.
        """
        if array.name not in self._arrays:
            raise ValueError(f"array {array.name!r} is not registered")
        capacity_blocks = capacity_bytes // 512
        offset = self._next_extent[array.name]
        vdisk = VirtualDisk(
            name=vdisk_name,
            backing=array,
            offset_blocks=offset,
            capacity_blocks=capacity_blocks,
        )
        self._next_extent[array.name] = offset + capacity_blocks
        depth = (
            device_queue_depth
            if device_queue_depth is not None
            else self.default_device_queue_depth
        )
        device = VScsiDevice(
            self.engine,
            vm_name=vm.name,
            vdisk=vdisk,
            service=self.stats,
            device_queue_depth=depth,
        )
        vm.attach(device)
        return device

    # ------------------------------------------------------------------
    def collector_for(self, vm_name: str, vdisk_name: str):
        """Shortcut: the stats collector for a (VM, vdisk) pair."""
        return self.stats.collector(vm_name, vdisk_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EsxServer vms={sorted(self._vms)} arrays={sorted(self._arrays)}>"
        )
