"""Virtual machines.

A :class:`VirtualMachine` is a named container of emulated SCSI
targets.  Guest software (the :mod:`repro.guest` OS and filesystem
models, or raw workload generators) issues :class:`ScsiRequest`\\ s
against a target by vdisk name — the same shape as a guest driver
writing to an emulated LSI Logic adapter (§2).
"""

from __future__ import annotations

from typing import Dict, List

from ..scsi.request import ScsiRequest
from .vscsi import VScsiDevice

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """One VM: a set of vSCSI targets plus identity."""

    def __init__(self, name: str):
        self.name = name
        self._targets: Dict[str, VScsiDevice] = {}

    # ------------------------------------------------------------------
    def attach(self, device: VScsiDevice) -> None:
        """Attach an emulated SCSI target (done by the EsxServer)."""
        if device.vdisk.name in self._targets:
            raise ValueError(
                f"VM {self.name!r} already has a disk named "
                f"{device.vdisk.name!r}"
            )
        self._targets[device.vdisk.name] = device

    def target(self, vdisk_name: str) -> VScsiDevice:
        """Look up a target by virtual-disk name."""
        try:
            return self._targets[vdisk_name]
        except KeyError:
            raise KeyError(
                f"VM {self.name!r} has no disk {vdisk_name!r}; "
                f"attached: {sorted(self._targets)}"
            ) from None

    def targets(self) -> List[VScsiDevice]:
        """All attached targets, in attach order."""
        return list(self._targets.values())

    # ------------------------------------------------------------------
    def issue(self, vdisk_name: str, request: ScsiRequest) -> None:
        """Issue a command to one of this VM's disks."""
        self.target(vdisk_name).issue(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualMachine {self.name!r} disks={sorted(self._targets)}>"
