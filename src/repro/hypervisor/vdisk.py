"""Virtual disks: linear block arrays carved out of an array LUN.

§3: "The virtual disk, for our purposes, can be thought of as a linear
array and logical blocks as offsets into the array."  Each virtual
disk is an extent of a shared :class:`~repro.storage.array.StorageArray`
LUN — which is precisely why multiple VMs' workloads interfere at the
spindles while each VM's *own* address space (what the histograms see)
stays linear and private.
"""

from __future__ import annotations

from ..scsi.commands import SECTOR_BYTES
from ..storage.array import StorageArray

__all__ = ["VirtualDisk"]


class VirtualDisk:
    """An extent of the backing LUN exported to one VM as a SCSI disk."""

    def __init__(self, name: str, backing: StorageArray, offset_blocks: int,
                 capacity_blocks: int):
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
        if offset_blocks < 0:
            raise ValueError(f"negative extent offset {offset_blocks}")
        if offset_blocks + capacity_blocks > backing.capacity_blocks:
            raise ValueError(
                f"extent [{offset_blocks}, {offset_blocks + capacity_blocks}) "
                f"exceeds LUN capacity {backing.capacity_blocks}"
            )
        self.name = name
        self.backing = backing
        self.offset_blocks = offset_blocks
        self.capacity_blocks = capacity_blocks

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * SECTOR_BYTES

    def translate(self, lba: int, nblocks: int) -> int:
        """Map a virtual-disk LBA to the backing LUN address space."""
        if lba < 0 or lba + nblocks > self.capacity_blocks:
            raise ValueError(
                f"access [{lba}, {lba + nblocks}) outside virtual disk "
                f"{self.name!r} of {self.capacity_blocks} blocks"
            )
        return self.offset_blocks + lba

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gib = self.capacity_bytes / 1024**3
        return f"<VirtualDisk {self.name!r} {gib:.1f} GiB @{self.offset_blocks}>"
