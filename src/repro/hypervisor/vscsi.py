"""The vSCSI emulation layer — the paper's instrumentation point.

§2-§3: the guest's LSI/Bus Logic driver traps into the VMM, device
emulation decodes the command, and ESX "is able to inspect each I/O in
flight on a per-virtual machine, per-virtual disk basis."  The
:class:`VScsiDevice` is that inspection point: every command passes
through :meth:`issue`, where — *if enabled* — the histogram service
and the trace framework observe it; completions flow back through the
same object.

The observation deliberately sees only what a hypervisor can see:
op, LBA, length, timestamps and the in-flight count.  Time spent in
guest OS queues is invisible (a stated limit of the approach, §6).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.service import HistogramService
from ..core.tracing import TraceBuffer
from ..scsi.queue import PendingQueue
from ..scsi.request import ScsiRequest
from ..sim.engine import Engine
from .vdisk import VirtualDisk

__all__ = ["VScsiDevice"]


class VScsiDevice:
    """One emulated SCSI target: a virtual disk as seen by one VM.

    Parameters
    ----------
    engine:
        Simulation engine.
    vm_name / vdisk:
        Identity of the (VM, virtual disk) pair.
    service:
        The host-wide :class:`HistogramService` (hooks are cheap no-ops
        while disabled).
    device_queue_depth:
        Concurrency the hypervisor allows toward the backing device;
        excess commands wait in the per-VM pending queue (§2).
    """

    def __init__(self, engine: Engine, vm_name: str, vdisk: VirtualDisk,
                 service: HistogramService,
                 device_queue_depth: Optional[int] = None):
        self.engine = engine
        self.vm_name = vm_name
        self.vdisk = vdisk
        self.service = service
        self.queue = PendingQueue(depth_limit=device_queue_depth)
        self.queue.set_dispatcher(self._dispatch)
        self.trace: Optional[TraceBuffer] = None
        self.commands = 0
        # While a burst is being issued, _dispatch appends its stats
        # columns here instead of calling the service per command.
        self._burst_cols: Optional[Tuple[List, ...]] = None
        # Flash backends publish per-command FTL telemetry (WA percent,
        # GC pause) for the command whose completion callback is about
        # to run; mechanical backends don't have the method and the
        # completion path skips the fetch entirely.
        self._take_telemetry = getattr(
            vdisk.backing, "take_completion_telemetry", None)

    # ------------------------------------------------------------------
    # Tracing control (§1: "a simple virtual SCSI command tracing
    # framework")
    # ------------------------------------------------------------------
    def start_trace(self, max_records: Optional[int] = None) -> TraceBuffer:
        """Begin tracing commands on this virtual disk."""
        self.trace = TraceBuffer(max_records=max_records)
        return self.trace

    def stop_trace(self) -> Optional[TraceBuffer]:
        """Stop tracing; returns the collected buffer."""
        buffer, self.trace = self.trace, None
        return buffer

    # ------------------------------------------------------------------
    # I/O path
    # ------------------------------------------------------------------
    def issue(self, request: ScsiRequest) -> None:
        """Accept a command from the guest driver."""
        self.commands += 1
        self.queue.submit(request)

    def issue_burst(self, requests: Sequence[ScsiRequest]) -> None:
        """Accept a run of same-time commands as one batch.

        Exactly equivalent to an :meth:`issue` loop — each request still
        passes through the pending queue (so a depth limit queues the
        excess, to be dispatched scalar-style as completions free slots)
        — but stats for the commands dispatched now are recorded with a
        single columnar :meth:`HistogramService.record_issue_batch` call
        instead of one service call per command.
        """
        cols: Tuple[List, ...] = ([], [], [], [], [])
        self._burst_cols = cols
        try:
            for request in requests:
                self.commands += 1
                self.queue.submit(request)
        finally:
            self._burst_cols = None
        if cols[0]:
            self.service.record_issue_batch(self.vm_name, self.vdisk.name,
                                            *cols)

    def issue_cdb(self, cdb: bytes, tag: str = "") -> ScsiRequest:
        """Accept a raw Command Descriptor Block, as the emulated LSI
        Logic adapter would receive it from the guest driver (§2), and
        decode it into an in-flight request."""
        from ..scsi.commands import parse_cdb

        parsed = parse_cdb(cdb)
        request = ScsiRequest(parsed.is_read, parsed.lba, parsed.nblocks,
                              tag=tag)
        self.issue(request)
        return request

    def _dispatch(self, request: ScsiRequest) -> None:
        """Send a command to the backing device (past any queueing)."""
        now = self.engine.now
        request.mark_issued(now)
        # Outstanding *other* commands at arrival (§3.3): this request
        # was just added to the in-flight set, so subtract it.
        outstanding_before = self.queue.outstanding - 1
        cols = self._burst_cols
        if cols is not None:
            cols[0].append(now)
            cols[1].append(request.is_read)
            cols[2].append(request.lba)
            cols[3].append(request.nblocks)
            cols[4].append(outstanding_before)
        else:
            self.service.record_issue(
                self.vm_name,
                self.vdisk.name,
                now,
                request.is_read,
                request.lba,
                request.nblocks,
                outstanding_before,
            )
        backing_lba = self.vdisk.translate(request.lba, request.nblocks)
        self.vdisk.backing.submit(
            backing_lba,
            request.nblocks,
            request.is_read,
            lambda: self._complete(request),
        )

    def _complete(self, request: ScsiRequest) -> None:
        now = self.engine.now
        assert request.issue_ns is not None
        wa_pct = gc_pause_us = None
        if self._take_telemetry is not None:
            wa_pct, gc_pause_us = self._take_telemetry()
        self.service.record_complete(
            self.vm_name,
            self.vdisk.name,
            now,
            request.is_read,
            now - request.issue_ns,
            wa_pct=wa_pct,
            gc_pause_us=gc_pause_us,
        )
        if self.trace is not None:
            self.trace.append(
                request.issue_ns,
                now,
                request.lba,
                request.nblocks,
                request.is_read,
            )
        # Retire from the in-flight set *before* the request's own
        # callbacks run: a workload continuation may immediately issue
        # its next command, and the outstanding count it observes must
        # no longer include this one.
        self.queue.complete(request)
        request.mark_completed(now)

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Commands in flight at the device right now."""
        return self.queue.outstanding

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VScsiDevice {self.vm_name}/{self.vdisk.name} "
            f"outstanding={self.outstanding}>"
        )
