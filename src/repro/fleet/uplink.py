"""``FleetUplink`` — one node's store-and-forward edge to its parent.

An uplink owns a background sender thread and a FIFO outbox of encoded
snapshots.  ``on_seal`` plugs straight into a
:class:`~repro.live.server.LiveStatsServer` or
:class:`~repro.live.cluster.ClusterServer` ``on_seal`` hook: sealing an
epoch encodes it (:func:`~repro.fleet.protocol.encode_host_snapshot`)
and enqueues it; the sender delivers in order with the ``(session,
seq)`` exactly-once discipline and bounded-backoff reconnect.

Delivery semantics, in layers:

* **Retry** — a transport failure closes the connection and resends
  the same ``(session, seq)`` after a jittered exponential backoff;
  the parent's ack cache answers an already-processed frame without
  re-merging.  The jitter is seeded per-uplink (decorrelated across a
  fleet), so ten thousand leaves knocked over by the same parent
  restart do not thundering-herd it on the same schedule.
* **Re-parent** — after ``failover_attempts`` consecutive failures the
  uplink rotates to the next parent in its list (or re-syncs with the
  same one, if it is the only one), bumps its session generation and
  replays *everything* it has ever sent: acked history first, then
  the outbox.  The new parent may have seen none, some or all of it —
  the per-``(host, epoch)`` watermarks upstream make the replay
  idempotent, so a parent crash loses nothing and a duplicate replay
  double-counts nothing.
* **Fault site** — every send attempt passes through the
  ``fleet.uplink`` site, so seeded
  :class:`~repro.faults.FaultPlan` schedules can reset/delay/truncate
  any send and chaos tests can pin byte-identical global state under
  any schedule.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import uuid
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..faults import fire
from ..live.client import LiveConnectionError, LiveError
from ..live.protocol import (
    FRAME_ERROR,
    FRAME_OK,
    ProtocolError,
    pack_control,
    read_frame,
)
from .protocol import encode_host_snapshot, pack_snapshot, parse_parents

__all__ = ["FleetUplink"]

DEFAULT_FAILOVER_ATTEMPTS = 3


class _Pending:
    __slots__ = ("header", "payload", "seq")

    def __init__(self, header: Dict, payload: bytes):
        self.header = header
        self.payload = payload
        #: Seq assigned for the current session generation, or None.
        self.seq: Optional[int] = None


class FleetUplink:
    """Forward sealed epoch snapshots to one of ``parents``.

    ``parents`` is an ordered failover list (``"host:port,..."`` or
    structured pairs); ``host`` names this publisher in every snapshot
    header (defaults to a generated id).  ``jitter_seed`` pins the
    backoff jitter stream for deterministic tests; by default it is
    derived from the node id, so every uplink in a fleet jitters
    differently but reproducibly.
    """

    def __init__(self, parents, host: Optional[str] = None,
                 node: Optional[str] = None,
                 timeout: Optional[float] = 10.0,
                 retry_backoff: float = 0.05,
                 retry_backoff_cap: float = 2.0,
                 retry_jitter: float = 0.5,
                 jitter_seed=None,
                 failover_attempts: int = DEFAULT_FAILOVER_ATTEMPTS,
                 max_replay: Optional[int] = None):
        self.parents = parse_parents(parents)
        self.node = node or uuid.uuid4().hex[:12]
        self.host = host or f"host-{self.node}"
        self.timeout = timeout
        if retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {retry_backoff}")
        if not 0.0 <= retry_jitter <= 1.0:
            raise ValueError(
                f"retry_jitter must be in [0, 1], got {retry_jitter}")
        if failover_attempts < 1:
            raise ValueError(
                f"failover_attempts must be >= 1, got {failover_attempts}")
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        self.retry_jitter = retry_jitter
        self.failover_attempts = failover_attempts
        self._rng = random.Random(
            jitter_seed if jitter_seed is not None else self.node)

        self._parent_index = 0
        #: Session generation: bumped on every re-parent, so the new
        #: link starts a fresh gapless sequence stream.
        self._generation = 0
        self._next_seq = 0
        self._last_acked = 0

        self._outbox: Deque[_Pending] = deque()
        #: Acked snapshots, kept (bounded by ``max_replay``) for full
        #: replay after a re-parent.  Dropping old entries only costs
        #: replay coverage for parents that never saw them — with a
        #: root that persists, history older than the bound has long
        #: been merged everywhere.
        self._acked: Deque[_Pending] = deque(maxlen=max_replay)
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._failures = 0

        self.forwarded_total = 0
        self.duplicate_acks_total = 0
        self.retries_total = 0
        self.reconnects_total = 0
        self.reparents_total = 0
        self.send_errors: List[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetUplink":
        if self._thread is not None:
            raise RuntimeError("uplink already started")
        self._thread = threading.Thread(target=self._sender_loop,
                                        name=f"fleet-uplink-{self.node}",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._drop_connection()

    def __enter__(self) -> "FleetUplink":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def on_seal(self, epoch) -> None:
        """``LiveStatsServer``/``ClusterServer`` ``on_seal`` hook."""
        header, payload = encode_host_snapshot(self.host, epoch)
        self.enqueue(header, payload)

    #: Alias for callers holding an epoch rather than a hook slot.
    forward_epoch = on_seal

    def enqueue(self, header: Dict, payload: bytes) -> None:
        """Queue one already-encoded snapshot (relay path)."""
        with self._cond:
            self._outbox.append(_Pending(header, bytes(payload)))
            self._cond.notify_all()

    def pending(self) -> int:
        with self._cond:
            return len(self._outbox)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the outbox is empty; ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: not self._outbox,
                                       timeout=timeout)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    @property
    def parent(self) -> Tuple[str, int]:
        return self.parents[self._parent_index]

    @property
    def session(self) -> str:
        host, port = self.parent
        return f"{self.node}/{self._generation}@{host}:{port}"

    def re_parent(self, index: Optional[int] = None) -> Tuple[str, int]:
        """Switch parents (default: next in the list) and schedule a
        full replay.

        Bumps the session generation — the new link gets a fresh
        gapless sequence stream — and re-enqueues every acked snapshot
        ahead of the outbox, preserving per-host epoch order.  Safe to
        call with one parent: it becomes a same-parent re-sync, the
        recovery path for a parent that restarted and lost its ack
        cache.
        """
        with self._cond:
            self._reparent_locked(index)
            self._cond.notify_all()
        return self.parent

    def _reparent_locked(self, index: Optional[int] = None) -> None:
        if index is None:
            index = (self._parent_index + 1) % len(self.parents)
        if not 0 <= index < len(self.parents):
            raise ValueError(f"no parent {index} (have {self.parents})")
        self._parent_index = index
        self._generation += 1
        self._next_seq = 0
        self._last_acked = 0
        self._failures = 0
        self.reparents_total += 1
        replay = list(self._acked)
        self._acked.clear()
        for item in replay + list(self._outbox):
            item.seq = None
        self._outbox.extendleft(reversed(replay))
        self._drop_connection()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        self._sock = None
        self._rfile = None
        self._wfile = None

    def _ensure_connection(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(self.parent, timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self.reconnects_total += 1
        if self._last_acked > 0:
            # Declare the ack watermark before any replay, so a parent
            # that restarted (empty ack cache) learns it instead of
            # racing the replayed frames.
            self._control_roundtrip({"op": "fleet-hello",
                                     "node": self.session,
                                     "seq": self._last_acked})

    def _control_roundtrip(self, op: Dict) -> Dict:
        self._wfile.write(pack_control(op))
        self._wfile.flush()
        frame = read_frame(self._rfile)
        if frame is None:
            raise LiveConnectionError("parent closed during control op")
        ftype, payload = frame
        if ftype == FRAME_ERROR:
            document = json.loads(payload.decode("utf-8"))
            raise LiveError(document.get("error", "parent error"))
        if ftype != FRAME_OK:
            raise ProtocolError(f"unexpected response type 0x{ftype:02x}")
        return json.loads(payload.decode("utf-8"))

    def _send_one(self, item: _Pending, session: str) -> Dict:
        self._ensure_connection()
        if item.seq is None:
            self._next_seq += 1
            item.seq = self._next_seq
        action = fire("fleet.uplink", node=self.node,
                      host=item.header.get("host"),
                      epoch=item.header.get("epoch"), point="send")
        frame = pack_snapshot(session, item.seq, item.header, item.payload)
        if action is not None and action.kind == "partial":
            # Injected short write: emit a truncated frame, then fail
            # the way a dying TCP connection would.
            cut = max(1, int(len(frame) * action.fraction))
            self._wfile.write(frame[:cut])
            self._wfile.flush()
            raise ConnectionResetError("injected short snapshot write")
        self._wfile.write(frame)
        self._wfile.flush()
        frame = read_frame(self._rfile)
        if frame is None:
            raise LiveConnectionError("parent closed before the ack")
        ftype, payload = frame
        if ftype == FRAME_ERROR:
            document = json.loads(payload.decode("utf-8"))
            raise LiveError(document.get("error", "parent error"))
        if ftype != FRAME_OK:
            raise ProtocolError(f"unexpected ack type 0x{ftype:02x}")
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # Sender loop
    # ------------------------------------------------------------------
    def _sender_loop(self) -> None:
        while True:
            with self._cond:
                while not self._outbox and not self._stop.is_set():
                    self._cond.wait()
                if self._stop.is_set() and not self._outbox:
                    return
                item = self._outbox[0]
                session = self.session
            try:
                ack = self._send_one(item, session)
            except (OSError, ValueError, LiveError) as exc:
                # LiveError covers semantic rejections (a stale/gap seq
                # after a divergence): treated like a transport fault —
                # enough of them trigger a generation-bumped re-sync,
                # which always converges.
                self._drop_connection()
                if self._stop.is_set():
                    return
                self.retries_total += 1
                self._failures += 1
                if len(self.send_errors) < 64:
                    self.send_errors.append(f"{type(exc).__name__}: {exc}")
                if self._failures >= self.failover_attempts:
                    with self._cond:
                        self._reparent_locked()
                self._sleep_backoff()
                continue
            with self._cond:
                self._failures = 0
                if self._outbox and self._outbox[0] is item:
                    self._outbox.popleft()
                self._acked.append(item)
                self._last_acked = max(self._last_acked, item.seq or 0)
                self.forwarded_total += 1
                if not ack.get("applied", True):
                    self.duplicate_acks_total += 1
                self._cond.notify_all()

    def _sleep_backoff(self) -> None:
        base = self.retry_backoff * (2 ** max(0, self._failures - 1))
        delay = min(base, self.retry_backoff_cap)
        if delay > 0 and self.retry_jitter > 0:
            delay *= 1.0 - self.retry_jitter * self._rng.random()
        if delay > 0:
            self._stop.wait(delay)

    # ------------------------------------------------------------------
    def info(self) -> Dict:
        with self._cond:
            return {
                "node": self.node,
                "host": self.host,
                "parent": list(self.parent),
                "parents": [list(p) for p in self.parents],
                "generation": self._generation,
                "pending": len(self._outbox),
                "acked_retained": len(self._acked),
                "forwarded_total": self.forwarded_total,
                "duplicate_acks_total": self.duplicate_acks_total,
                "retries_total": self.retries_total,
                "reconnects_total": self.reconnects_total,
                "reparents_total": self.reparents_total,
            }
