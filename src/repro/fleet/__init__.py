"""``repro.fleet`` — hierarchical epoch-snapshot aggregation.

The fleet tier turns per-host characterization daemons into a global
view: hosts forward sealed epoch snapshots upward through an N-level
tree of :class:`FleetAggregator` nodes to a single root.  Every layer
merges with the same exact, associative histogram machinery the rest
of the repo is built on, so the root's global snapshot is
byte-identical to a single collector that had seen every record — and
the tree is free to be any shape, re-shape on failures, and replay on
reconnects without that identity breaking.

Quick tour::

    root     = FleetAggregator(port=7401, store="./fleethist")
    regional = FleetAggregator(port=7402,
                               parents=[("127.0.0.1", 7401)])
    uplink   = FleetUplink([("127.0.0.1", 7402)], host="esx-42")
    server   = LiveStatsServer(on_seal=uplink.on_seal)

See ``docs/fleet.md`` for the topology, frame flow, staleness model
and failure behavior, and ``repro fleet --help`` for the CLI.
"""

from .aggregator import FleetAggregator
from .protocol import (
    FRAME_SNAPSHOT,
    encode_host_snapshot,
    fleet_rpc,
    pack_snapshot,
    parse_parents,
    snapshot_extents,
    unpack_snapshot,
)
from .queries import (
    FAMILIES,
    histogram_percentile,
    metric_value,
    percentile_doc,
    resolve_metric,
    topk,
)
from .state import COMPACT_AT, FleetLedger, HostState
from .uplink import FleetUplink

__all__ = [
    "COMPACT_AT",
    "FAMILIES",
    "FRAME_SNAPSHOT",
    "FleetAggregator",
    "FleetLedger",
    "FleetUplink",
    "HostState",
    "encode_host_snapshot",
    "fleet_rpc",
    "histogram_percentile",
    "metric_value",
    "pack_snapshot",
    "parse_parents",
    "percentile_doc",
    "resolve_metric",
    "snapshot_extents",
    "topk",
    "unpack_snapshot",
]
