"""``FleetAggregator`` — one node of the hierarchical merge tree.

Every aggregator speaks the same protocol downward (children publish
``SNAPSHOT`` frames) and upward (an optional
:class:`~repro.fleet.uplink.FleetUplink` relays every *applied*
snapshot to its own parent, header and payload byte-for-byte).  A node
with no parents is the global root; give it a store and it persists
every applied host epoch, so the fleet's history survives restarts and
is queryable with the ordinary ``repro store`` tooling.

Exactness at this layer (see :mod:`repro.fleet.state` for the model):

* Per-link ``(session, seq)`` ack cache — a retried frame is answered
  with the original ack bytes, never re-merged.  ``fleet-hello`` seeds
  the watermark on reconnect, exactly like the live daemon's session
  hello.
* Per-``(host, epoch)`` watermarks — a duplicate arriving through a
  *different* link (re-parented child, full replay) is acknowledged
  ``{"applied": false, "duplicate": true}`` and not merged.  Relay
  happens only on apply, so duplicates also never travel further up.

The control plane exposes the fleet queries: ``topk`` (hottest disks
by any metric spec), ``percentile`` (fleet-wide estimates from merged
bins), ``hosts``/``tenants`` rollups, ``status``, ``snapshot`` and the
OpenMetrics ``metrics`` exposition.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import uuid
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.collector import DEFAULT_TIME_SLOT_NS
from ..core.service import HistogramService
from ..core.window import DEFAULT_WINDOW_SIZE
from ..live.exposition import render_openmetrics
from ..live.protocol import (
    FRAME_CONTROL,
    ProtocolError,
    pack_error,
    pack_ok,
    pack_text,
    read_frame_view,
    unpack_control,
)
from ..store.codec import collector_from_bytes
from .protocol import FRAME_SNAPSHOT, snapshot_extents, unpack_snapshot
from .queries import percentile_doc, topk
from .state import FleetLedger
from .uplink import FleetUplink

__all__ = ["FleetAggregator"]

#: LRU ceiling on remembered child sessions; in-flight entries are
#: always retained (each holds its ack), old idle links age out.
_MAX_SESSIONS = 4096


class _ChildSession:
    # ``last_unix`` is display-only; idle ages are computed from
    # ``last_mono`` so a wall-clock step cannot age (or rejuvenate) a
    # link.
    __slots__ = ("seq", "response", "last_unix", "last_mono",
                 "snapshots")

    def __init__(self, seq: int, response: bytes):
        self.seq = seq
        self.response = response
        self.last_unix = time.time()
        self.last_mono = time.monotonic()
        self.snapshots = 0

    def touch(self) -> None:
        self.last_unix = time.time()
        self.last_mono = time.monotonic()


class FleetAggregator:
    """One TCP aggregation node (root or regional).

    ``parents`` (optional) makes this a regional node relaying upward;
    ``store`` (a path or an open
    :class:`~repro.store.HistogramStore`) makes it persist applied
    epochs — typically only the root does.  ``online`` attaches an
    :class:`~repro.analysis.online.OnlineAnalyzer` that observes every
    *applied* host epoch (pass ``True``, a
    :class:`~repro.analysis.online.DriftConfig`, or an analyzer);
    typically only the root enables it, for the same reason only the
    cluster coordinator does — regional nodes see partial views.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 node: Optional[str] = None,
                 parents=None,
                 window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 store=None,
                 idle_timeout: Optional[float] = 60.0,
                 online=False,
                 uplink_jitter_seed=None,
                 uplink_failover_attempts: Optional[int] = None,
                 uplink_max_replay: Optional[int] = None):
        self.host = host
        self.port = port
        self.node = node or f"agg-{uuid.uuid4().hex[:8]}"
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        self.idle_timeout = idle_timeout
        self.ledger = FleetLedger(window_size=window_size,
                                  time_slot_ns=time_slot_ns)

        self._owns_store = False
        if store is not None and not hasattr(store, "append"):
            from ..store import HistogramStore
            store = HistogramStore.open_or_create(store)
            self._owns_store = True
        self.store = store
        self.degraded = False
        self.persist_errors: List[Dict] = []

        self.analyzer = None
        self.analysis_errors_total = 0
        if online:
            from ..analysis.online import DriftConfig, OnlineAnalyzer
            if hasattr(online, "observe_epoch"):
                self.analyzer = online
            elif isinstance(online, DriftConfig):
                self.analyzer = OnlineAnalyzer(online)
            else:
                self.analyzer = OnlineAnalyzer()

        self.uplink: Optional[FleetUplink] = None
        if parents:
            kwargs = {}
            if uplink_jitter_seed is not None:
                kwargs["jitter_seed"] = uplink_jitter_seed
            if uplink_failover_attempts is not None:
                kwargs["failover_attempts"] = uplink_failover_attempts
            if uplink_max_replay is not None:
                kwargs["max_replay"] = uplink_max_replay
            self.uplink = FleetUplink(parents, host=self.node,
                                      node=self.node, **kwargs)
        self.role = "regional" if self.uplink is not None else "root"

        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, _ChildSession]" = OrderedDict()
        self.duplicate_frames_total = 0
        self.rejected_frames_total = 0
        self.connections_total = 0

        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False
        self._closed = False
        self._started_unix: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FleetAggregator":
        if self._started:
            raise RuntimeError("aggregator already started")
        self._started = True
        self._started_unix = time.time()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"fleet-accept-{self.node}",
            daemon=True)
        self._accept_thread.start()
        if self.uplink is not None:
            self.uplink.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "FleetAggregator":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self, drain: bool = True,
              drain_timeout: float = 10.0) -> None:
        if self._closed:
            return
        self._closed = True
        self._stopping.set()
        if self._listener is not None:
            try:
                socket.create_connection(self.address, timeout=1.0).close()
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._conn_threads):
            thread.join(timeout=5.0)
        if self.uplink is not None:
            if drain:
                self.uplink.drain(timeout=drain_timeout)
            self.uplink.close()
        if self.store is not None and self._owns_store:
            try:
                self.store.checkpoint()
                self.store.close()
            except (OSError, ValueError) as exc:
                self._note_persist_failure(None, f"close: {exc}")

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            self.connections_total += 1
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"fleet-conn-{self.node}", daemon=True)
            thread.start()
            self._conn_threads.append(thread)
            # Forget finished handler threads so a long-lived node does
            # not accumulate thread objects.
            if len(self._conn_threads) > 64:
                self._conn_threads = [t for t in self._conn_threads
                                      if t.is_alive()]

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            if self.idle_timeout is not None:
                conn.settimeout(self.idle_timeout)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            head = bytearray(4)
            while not self._stopping.is_set():
                try:
                    frame = read_frame_view(rfile, head)
                except ProtocolError as exc:
                    self.rejected_frames_total += 1
                    wfile.write(pack_error(str(exc)))
                    wfile.flush()
                    return
                except (socket.timeout, TimeoutError):
                    return
                if frame is None:
                    return
                ftype, payload = frame
                try:
                    if ftype == FRAME_SNAPSHOT:
                        response = self._handle_snapshot(payload)
                    elif ftype == FRAME_CONTROL:
                        response = self._handle_control(
                            unpack_control(payload))
                    else:
                        raise ProtocolError(
                            f"aggregators accept SNAPSHOT and CONTROL "
                            f"frames only, got 0x{ftype:02x}")
                except (ProtocolError, ValueError) as exc:
                    self.rejected_frames_total += 1
                    response = pack_error(str(exc))
                wfile.write(response)
                wfile.flush()
        except (OSError, ValueError):
            return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # Snapshot ingestion
    # ------------------------------------------------------------------
    def _session(self, session: str) -> Optional[_ChildSession]:
        entry = self._sessions.get(session)
        if entry is not None:
            self._sessions.move_to_end(session)
        return entry

    def _remember(self, session: str, entry: _ChildSession) -> None:
        self._sessions[session] = entry
        self._sessions.move_to_end(session)
        while len(self._sessions) > _MAX_SESSIONS:
            self._sessions.popitem(last=False)

    def _handle_snapshot(self, payload) -> bytes:
        session, seq, header, body = unpack_snapshot(payload)
        relay: Optional[Tuple[Dict, bytes]] = None
        with self._lock:
            entry = self._session(session)
            if entry is not None:
                if seq == entry.seq:
                    # Retry of the frame we just acked (or a seeded
                    # watermark): answer with the original bytes.
                    self.duplicate_frames_total += 1
                    entry.touch()
                    return entry.response
                if seq < entry.seq:
                    raise ProtocolError(
                        f"stale sequence {seq} for session {session!r} "
                        f"(last processed {entry.seq})")
                if seq > entry.seq + 1:
                    raise ProtocolError(
                        f"sequence gap for session {session!r}: got "
                        f"{seq}, expected {entry.seq + 1}")
            elif seq != 1:
                raise ProtocolError(
                    f"unknown session {session!r} must start at "
                    f"sequence 1, got {seq} (send fleet-hello after a "
                    f"reconnect)")
            payload_bytes = bytes(body)
            applied, staleness = self.ledger.apply(header, payload_bytes,
                                                   via=session)
            doc = {"applied": applied, "duplicate": not applied,
                   "host": header["host"], "epoch": header["epoch"],
                   "seq": seq, "node": self.node}
            if staleness is not None:
                doc["staleness_seconds"] = staleness
            if applied and self.store is not None:
                self._persist(header, payload_bytes)
            if applied and self.analyzer is not None:
                self._observe(header, payload_bytes)
            response = pack_ok(doc)
            if entry is None:
                entry = _ChildSession(seq, response)
                self._remember(session, entry)
            else:
                entry.seq = seq
                entry.response = response
                entry.touch()
            entry.snapshots += 1
            if applied and self.uplink is not None:
                relay = (header, payload_bytes)
        if relay is not None:
            self.uplink.enqueue(*relay)
        return response

    def _persist(self, header: Dict, payload: bytes) -> None:
        """Append one applied snapshot to the store (root only).

        A store failure degrades instead of crashing — the snapshot is
        already merged in memory and acked exactly-once; losing its
        durability is recorded, not fatal.
        """
        try:
            service = HistogramService(window_size=self.window_size,
                                       time_slot_ns=self.time_slot_ns)
            for key, record in snapshot_extents(header, payload):
                service.adopt(key, collector_from_bytes(record))
            start_ns = int(header.get("start_ns", 0))
            end_ns = max(int(header.get("end_ns", start_ns + 1)),
                         start_ns + 1)
            self.store.append_epoch(service, start_ns, end_ns, sync=True)
        except (OSError, ValueError) as exc:
            self._note_persist_failure(header, str(exc))

    def _observe(self, header: Dict, payload: bytes) -> None:
        """Feed one applied host epoch to the online analyzer.

        The analyzer indexes epochs by the fleet-global apply sequence
        (host epoch numbers collide across hosts); a failing analysis
        stage is counted and never blocks the ack path.
        """
        try:
            pairs = [(key, collector_from_bytes(record))
                     for key, record in snapshot_extents(header, payload)]
            self.analyzer.observe_epoch(
                pairs, index=self.ledger.epochs_applied_total - 1)
        except (OSError, ValueError):
            self.analysis_errors_total += 1

    def _note_persist_failure(self, header: Optional[Dict],
                              message: str) -> None:
        self.degraded = True
        if len(self.persist_errors) < 64:
            self.persist_errors.append({
                "host": header.get("host") if header else None,
                "epoch": header.get("epoch") if header else None,
                "error": message,
            })

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _handle_control(self, op: Dict) -> bytes:
        name = op["op"]
        if name == "ping":
            return pack_ok({"pong": True, "fleet": True, "node": self.node,
                            "role": self.role,
                            "hosts": len(self.ledger.hosts)})
        if name == "fleet-hello":
            return pack_ok(self._handle_hello(op))
        if name in ("status", "info"):
            return pack_ok(self.info())
        if name == "topk":
            return pack_ok(self.topk(metric=op.get("metric", "commands"),
                                     k=int(op.get("k", 10))))
        if name == "percentile":
            return pack_ok(self.percentile(
                family=op.get("family", "latency_us"),
                q=float(op.get("q", 0.99)),
                op_name=op.get("io", "all")))
        if name == "hosts":
            return pack_ok(self.host_rollup())
        if name == "tenants":
            return pack_ok(self.tenant_rollup())
        if name == "snapshot":
            return pack_ok(self.snapshot_dict())
        if name == "verdicts":
            return pack_ok(self.verdicts_dict())
        if name == "metrics":
            return pack_text(self.openmetrics())
        raise ProtocolError(f"unknown control op {name!r}")

    def _handle_hello(self, op: Dict) -> Dict:
        session = op.get("node") or op.get("session")
        if not isinstance(session, str) or not session:
            raise ProtocolError("fleet-hello needs a session id")
        try:
            seq = int(op.get("seq", 0))
        except (TypeError, ValueError):
            raise ProtocolError("fleet-hello seq must be an integer") \
                from None
        if seq < 0:
            raise ProtocolError(f"fleet-hello seq must be >= 0, got {seq}")
        with self._lock:
            entry = self._session(session)
            if entry is None and seq > 0:
                # Seed the watermark: a replay of seq itself is
                # answered from this cached (duplicate) ack, and seq+1
                # continues the stream gaplessly.
                entry = _ChildSession(seq, pack_ok(
                    {"applied": False, "duplicate": True, "seq": seq,
                     "node": self.node, "seeded": True}))
                self._remember(session, entry)
            known = entry.seq if entry is not None else 0
        return {"session": session, "seq": known, "node": self.node}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def topk(self, metric: str = "commands", k: int = 10) -> Dict:
        with self._lock:
            pairs = self.ledger.global_pairs()
        try:
            ranking = topk(pairs, metric, k)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        return {"metric": metric, "k": k, "disks": len(pairs),
                "top": ranking}

    def percentile(self, family: str = "latency_us", q: float = 0.99,
                   op_name: str = "all") -> Dict:
        with self._lock:
            pairs = self.ledger.global_pairs()
        if not pairs:
            raise ProtocolError("no snapshots applied yet")
        aggregate = pairs[0][1]
        # Fold the per-disk merges into one fleet-wide collector; the
        # merge is exact, so the estimate equals one-shot aggregation.
        for _key, collector in pairs[1:]:
            aggregate = aggregate.merge(collector)
        try:
            return percentile_doc(aggregate, family, q, op=op_name)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None

    def host_rollup(self) -> Dict:
        with self._lock:
            hosts = self.ledger.hosts_doc()
            for host in hosts:
                collector = self.ledger.host_collector(host)
                if collector is not None:
                    hosts[host]["commands"] = collector.commands
                    hosts[host]["bytes"] = collector.total_bytes
        return {"hosts": hosts}

    def tenant_rollup(self) -> Dict:
        with self._lock:
            tenants = {
                vm: {"commands": collector.commands,
                     "reads": collector.read_commands,
                     "writes": collector.write_commands,
                     "bytes": collector.total_bytes}
                for vm, collector in self.ledger.tenant_pairs()
            }
        return {"tenants": tenants}

    def snapshot_dict(self) -> Dict:
        """Global merged snapshot, same per-disk shape as the live
        daemon's documents — the byte-identity surface the tests pin."""
        with self._lock:
            pairs = self.ledger.global_pairs()
            meta = {
                "node": self.node,
                "role": self.role,
                "hosts": len(self.ledger.hosts),
                "epochs_applied": self.ledger.epochs_applied_total,
                "records": self.ledger.records_total,
            }
        meta["disks"] = {f"{vm}/{vdisk}": collector.to_dict()
                        for (vm, vdisk), collector in pairs}
        return meta

    def verdicts_dict(self) -> Dict:
        """Rolling per-disk drift verdicts (root ``verdicts`` query)."""
        if self.analyzer is None:
            return {"online": False, "node": self.node, "role": self.role}
        with self._lock:
            doc = self.analyzer.to_dict()
        doc["online"] = True
        doc["node"] = self.node
        doc["role"] = self.role
        doc["analysis_errors_total"] = self.analysis_errors_total
        return doc

    def info(self) -> Dict:
        now_mono = time.monotonic()
        with self._lock:
            staleness = self.ledger.staleness_summary()
            children = {
                session: {"seq": entry.seq,
                          "snapshots": entry.snapshots,
                          "last_unix": entry.last_unix,
                          "idle_seconds":
                              max(0.0, now_mono - entry.last_mono)}
                for session, entry in self._sessions.items()
            }
            doc = {
                "fleet": True,
                "node": self.node,
                "role": self.role,
                "address": list(self.address),
                "started_unix": self._started_unix,
                "hosts": len(self.ledger.hosts),
                "host_states": self.ledger.hosts_doc(),
                "children": len(children),
                "child_sessions": children,
                "epochs_applied_total": self.ledger.epochs_applied_total,
                "duplicate_snapshots_total": self.ledger.duplicates_total,
                "duplicate_frames_total": self.duplicate_frames_total,
                "rejected_frames_total": self.rejected_frames_total,
                "records_total": self.ledger.records_total,
                "connections_total": self.connections_total,
                "staleness": staleness,
                "degraded": self.degraded,
                "persist_errors": list(self.persist_errors),
            }
            if self.analyzer is not None:
                doc["online"] = {
                    "epochs_seen": self.analyzer.epochs_seen,
                    "verdicts_total": self.analyzer.verdicts_total,
                    "drift_events_total": self.analyzer.drift_events_total,
                    "analysis_errors_total": self.analysis_errors_total,
                }
        if self.uplink is not None:
            doc["uplink"] = self.uplink.info()
        if self.store is not None:
            entry = {"path": str(self.store.path),
                     "owned": self._owns_store,
                     "closed": self.store.closed}
            if not self.store.closed:
                entry["records"] = len(self.store)
                entry["epochs"] = self.store.epochs
            doc["store"] = entry
        return doc

    def openmetrics(self) -> str:
        """Fleet exposition: the global merge plus ``fleet_*``-style
        node counters (rendered under the shared ``live_`` prefix so
        one scraper config covers daemons and aggregators)."""
        with self._lock:
            pairs = self.ledger.global_pairs()
            staleness = self.ledger.staleness_summary()
            daemon = {
                "fleet_hosts": len(self.ledger.hosts),
                "fleet_children": len(self._sessions),
                "fleet_epochs_applied_total":
                    self.ledger.epochs_applied_total,
                "fleet_duplicate_snapshots_total":
                    self.ledger.duplicates_total,
                "fleet_records_total": self.ledger.records_total,
                "fleet_rejected_frames_total": self.rejected_frames_total,
                "fleet_degraded": 1 if self.degraded else 0,
                "fleet_persist_failures_total": len(self.persist_errors),
            }
            if staleness["p99"] is not None:
                daemon["fleet_staleness_p50_seconds"] = staleness["p50"]
                daemon["fleet_staleness_p99_seconds"] = staleness["p99"]
            verdicts = None
            if self.analyzer is not None:
                daemon["analysis_epochs_total"] = self.analyzer.epochs_seen
                daemon["analysis_errors_total"] = self.analysis_errors_total
                verdicts = self.analyzer.verdicts()
        if self.uplink is not None:
            up = self.uplink.info()
            daemon["fleet_relayed_total"] = up["forwarded_total"]
            daemon["fleet_uplink_pending"] = up["pending"]
            daemon["fleet_uplink_reparents_total"] = up["reparents_total"]
        return render_openmetrics(pairs, daemon, verdicts=verdicts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else (
            "running" if self._started else "new")
        return (f"<FleetAggregator {self.role} {state} "
                f"{self.host}:{self.port} hosts={len(self.ledger.hosts)}>")
