"""Merged fleet state: per-host epoch watermarks + payload history.

The fleet's exactness story has two layers.  The ``(session, seq)``
ack cache on each link deduplicates *retries* cheaply (the common
case: an ack lost to a broken connection).  This module provides the
second layer — per-``(host, epoch)`` watermarks — which makes the
*whole tree* idempotent: a re-parented uplink replaying its entire
history to a new parent, or a duplicate snapshot arriving through two
different regional nodes, is detected here and acknowledged without
being merged twice.  Together they give the acceptance guarantee: no
schedule of resets, crashes and replays loses or double-counts an
epoch.

Payloads are kept raw (``RPHCOL2`` records per disk) so the global
merge is one vectorized
:func:`~repro.store.codec.merge_collector_payloads` reduce per disk.
Long-running aggregators compact each disk's list once it exceeds
:data:`COMPACT_AT` records — the merge is associative, so folding a
prefix into a single record is exact and bounds memory at
O(disks × hosts), not O(epochs).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from ..core.collector import DEFAULT_TIME_SLOT_NS, VscsiStatsCollector
from ..core.service import DiskKey, HistogramService
from ..core.window import DEFAULT_WINDOW_SIZE
from ..store.codec import collector_to_bytes, merge_collector_payloads

__all__ = ["COMPACT_AT", "FleetLedger", "HostState"]

#: Per-disk raw-payload list length that triggers an exact in-place
#: compaction (merge the list into one record).
COMPACT_AT = 32

#: Staleness samples retained for the percentile summary.
_STALENESS_SAMPLES = 4096


class HostState:
    """Everything one aggregator knows about one publishing host.

    The dedup core is ``watermark`` + ``sparse``: every epoch index
    ``<= watermark`` has been applied, plus the (usually empty) sparse
    set of applied indices above it — out-of-order delivery through
    different tree paths keeps the set small and it collapses back
    into the watermark as gaps fill.
    """

    __slots__ = ("watermark", "sparse", "payloads", "records",
                 "epochs_applied", "last_epoch", "last_sealed_unix",
                 "last_applied_unix", "last_staleness", "via")

    def __init__(self):
        self.watermark = -1
        self.sparse: Set[int] = set()
        #: Per-disk raw RPHCOL2 records (compacted past COMPACT_AT).
        self.payloads: Dict[DiskKey, List[bytes]] = {}
        self.records = 0
        self.epochs_applied = 0
        self.last_epoch: Optional[int] = None
        self.last_sealed_unix: Optional[float] = None
        self.last_applied_unix: Optional[float] = None
        self.last_staleness: Optional[float] = None
        #: Session id of the link the latest snapshot arrived on.
        self.via: Optional[str] = None

    def seen(self, epoch: int) -> bool:
        return epoch <= self.watermark or epoch in self.sparse

    def mark(self, epoch: int) -> None:
        self.sparse.add(epoch)
        while self.watermark + 1 in self.sparse:
            self.watermark += 1
            self.sparse.discard(self.watermark)

    def to_dict(self) -> Dict:
        return {
            "watermark": self.watermark,
            "sparse": sorted(self.sparse),
            "epochs_applied": self.epochs_applied,
            "records": self.records,
            "last_epoch": self.last_epoch,
            "last_sealed_unix": self.last_sealed_unix,
            "last_applied_unix": self.last_applied_unix,
            "last_staleness_seconds": self.last_staleness,
            "via": self.via,
            "disks": len(self.payloads),
        }


class FleetLedger:
    """Deduplicated, mergeable history of every host's sealed epochs.

    Not thread-safe on its own — the owning
    :class:`~repro.fleet.aggregator.FleetAggregator` serializes access
    under its session lock.
    """

    def __init__(self, window_size: int = DEFAULT_WINDOW_SIZE,
                 time_slot_ns: int = DEFAULT_TIME_SLOT_NS,
                 compact_at: int = COMPACT_AT):
        self.window_size = window_size
        self.time_slot_ns = time_slot_ns
        self.compact_at = compact_at
        self.hosts: Dict[str, HostState] = {}
        self.epochs_applied_total = 0
        self.duplicates_total = 0
        self.records_total = 0
        #: Recent (bounded) staleness samples in seconds: wall-clock
        #: age of each snapshot at the moment it was applied here.
        self.staleness_samples = deque(maxlen=_STALENESS_SAMPLES)
        # Staleness is a *duration*, so "now" must come from a clock
        # that cannot step: anchor the unix epoch once and advance it
        # with the monotonic clock.  An NTP step (or a VM migration
        # freezing the wall clock) would otherwise inject huge phantom
        # samples into the p99 reservoir.
        self._unix_anchor = time.time()
        self._mono_anchor = time.monotonic()

    # ------------------------------------------------------------------
    def seen(self, host: str, epoch: int) -> bool:
        state = self.hosts.get(host)
        return state is not None and state.seen(epoch)

    def apply(self, header: Dict, payload: bytes,
              via: Optional[str] = None,
              now: Optional[float] = None
              ) -> Tuple[bool, Optional[float]]:
        """Merge one snapshot; returns ``(applied, staleness_seconds)``.

        A ``(host, epoch)`` already recorded is a duplicate: counted,
        not merged, ``(False, None)``.  Staleness is measured against
        the header's ``sealed_unix`` when present; when ``now`` is not
        supplied it is derived from the ledger's monotonic-anchored
        timeline (immune to wall-clock steps), and negative deltas —
        the publisher's clock running ahead of ours — clamp to zero.
        """
        host = header["host"]
        epoch = header["epoch"]
        state = self.hosts.get(host)
        if state is None:
            state = self.hosts[host] = HostState()
        if state.seen(epoch):
            self.duplicates_total += 1
            return False, None
        state.mark(epoch)
        view = memoryview(payload)
        for extent in header["disks"]:
            key = (extent["vm"], extent["vdisk"])
            record = bytes(view[extent["off"]:extent["off"] + extent["len"]])
            bucket = state.payloads.setdefault(key, [])
            bucket.append(record)
            if len(bucket) > self.compact_at:
                # Exact: the merge is associative, so folding the list
                # into one record now and merging more records later
                # equals merging everything at once.
                folded = collector_to_bytes(merge_collector_payloads(bucket))
                bucket.clear()
                bucket.append(folded)
        records = int(header.get("records", 0))
        state.records += records
        state.epochs_applied += 1
        state.last_epoch = epoch
        state.via = via
        self.epochs_applied_total += 1
        self.records_total += records
        if now is None:
            now = self._unix_anchor + (time.monotonic() - self._mono_anchor)
        state.last_applied_unix = now
        staleness = None
        sealed = header.get("sealed_unix")
        if isinstance(sealed, (int, float)):
            state.last_sealed_unix = float(sealed)
            staleness = max(0.0, now - float(sealed))
            state.last_staleness = staleness
            self.staleness_samples.append(staleness)
        return True, staleness

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------
    def global_pairs(self) -> List[Tuple[DiskKey, VscsiStatsCollector]]:
        """Fleet-wide ``((vm, vdisk), collector)`` pairs, exactly merged
        across every host (one vectorized reduce per disk)."""
        per_disk: Dict[DiskKey, List[bytes]] = {}
        for state in self.hosts.values():
            for key, records in state.payloads.items():
                per_disk.setdefault(key, []).extend(records)
        return [(key, merge_collector_payloads(records))
                for key, records in sorted(per_disk.items())]

    def global_service(self) -> HistogramService:
        service = HistogramService(window_size=self.window_size,
                                   time_slot_ns=self.time_slot_ns)
        for key, collector in self.global_pairs():
            service.adopt(key, collector)
        return service

    def host_collector(self, host: str) -> Optional[VscsiStatsCollector]:
        """One host's aggregate across its disks (the fleet analogue of
        ``HistogramService.aggregate``)."""
        state = self.hosts.get(host)
        if state is None:
            return None
        records = [record for bucket in state.payloads.values()
                   for record in bucket]
        if not records:
            return None
        return merge_collector_payloads(records)

    def tenant_pairs(self) -> List[Tuple[str, VscsiStatsCollector]]:
        """Per-tenant (= per-VM) aggregates across every host and
        vdisk."""
        per_vm: Dict[str, List[bytes]] = {}
        for state in self.hosts.values():
            for (vm, _vdisk), records in state.payloads.items():
                per_vm.setdefault(vm, []).extend(records)
        return [(vm, merge_collector_payloads(records))
                for vm, records in sorted(per_vm.items())]

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------
    def staleness_summary(self) -> Dict:
        samples = sorted(self.staleness_samples)
        if not samples:
            return {"samples": 0, "p50": None, "p99": None, "max": None}

        def rank(q: float) -> float:
            index = min(len(samples) - 1,
                        max(0, int(q * len(samples) + 0.5) - 1))
            return samples[index]

        return {"samples": len(samples), "p50": rank(0.50),
                "p99": rank(0.99), "max": samples[-1]}

    def hosts_doc(self) -> Dict[str, Dict]:
        return {host: state.to_dict()
                for host, state in sorted(self.hosts.items())}
