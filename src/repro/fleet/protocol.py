"""Wire protocol of the fleet aggregation tier.

The fleet tier reuses the live daemon's framing verbatim (``u32 BE``
length, ``u8`` type, payload — :mod:`repro.live.protocol`) and adds one
request frame:

* ``SNAPSHOT`` (0x04) — one sealed epoch from one host, with retry
  identity.  Payload::

      u16 BE session-id length | session id (UTF-8) |
      u64 BE sequence number   |
      u32 BE header length     | header (JSON, UTF-8) |
      concatenated RPHCOL2 collector records

  The header is ``{"host", "epoch", "records", "start_ns", "end_ns",
  "sealed_unix", "disks": [{"vm", "vdisk", "off", "len"}, ...]}`` —
  the same extent scheme the cluster fan-in uses, so an aggregator
  slices per-disk records out of the payload without copying or
  decoding until merge time, and a regional node relays the header +
  payload upward byte-for-byte.

  ``(session, seq)`` is the DATA_SEQ exactly-once discipline from the
  live protocol: the sequence starts at 1, increments per frame on one
  link, and the receiver answers a retry of an already-processed frame
  from its ack cache.  Cross-link idempotence (a re-parented uplink
  replaying epochs a previous parent already forwarded) is handled one
  layer up by the per-``(host, epoch)`` watermarks in
  :class:`repro.fleet.state.FleetLedger`.

Control traffic uses the live ``CONTROL``/``OK``/``TEXT``/``ERROR``
frames unchanged; see :class:`repro.fleet.aggregator.FleetAggregator`
for the op table.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..live.protocol import (
    FRAME_ERROR,
    FRAME_OK,
    FRAME_TEXT,
    MAX_FRAME_BYTES,
    ProtocolError,
    pack_control,
    pack_frame,
    read_frame,
)
from ..store.codec import collector_to_bytes

__all__ = [
    "FRAME_SNAPSHOT",
    "encode_host_snapshot",
    "fleet_rpc",
    "pack_snapshot",
    "parse_parents",
    "snapshot_extents",
    "unpack_snapshot",
]

#: Request frame type of one sealed host epoch (see module docstring).
FRAME_SNAPSHOT = 0x04

_NAME_LEN = struct.Struct("!H")
_SEQ = struct.Struct("!Q")
_HEAD_LEN = struct.Struct("!I")

_RPC_TIMEOUT = 30.0


def pack_snapshot(session: str, seq: int, header: Dict,
                  payload: bytes) -> bytes:
    """Build a ``SNAPSHOT`` frame from an extent header + record bytes.

    ``session`` names one uplink→parent link (it survives reconnects);
    ``seq`` starts at 1 and increments per frame on that link.  A
    resend of the same ``(session, seq)`` must be byte-identical —
    that is what lets the parent answer it from the ack cache.
    """
    if seq < 1:
        raise ProtocolError(f"sequence number must be >= 1, got {seq}")
    if not session:
        raise ProtocolError("session id must be non-empty")
    raw = session.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"session id of {len(raw)} bytes is too long")
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return pack_frame(
        FRAME_SNAPSHOT,
        _NAME_LEN.pack(len(raw)) + raw + _SEQ.pack(seq)
        + _HEAD_LEN.pack(len(head)) + head + payload,
    )


def unpack_snapshot(payload) -> Tuple[str, int, Dict, memoryview]:
    """Split a ``SNAPSHOT`` payload into
    ``(session, seq, header, record bytes)``.

    The record bytes come back as a :class:`memoryview` over
    ``payload`` — never a copy — so a server that read the frame with
    ``read_frame_view`` slices per-disk extents zero-copy.  The header
    is validated structurally (host, epoch, extent bounds) so a
    malformed frame is rejected before any state is touched.
    """
    view = memoryview(payload)
    if len(view) < _NAME_LEN.size:
        raise ProtocolError("snapshot frame truncated in its session header")
    (slen,) = _NAME_LEN.unpack_from(view, 0)
    offset = _NAME_LEN.size
    if len(view) < offset + slen + _SEQ.size + _HEAD_LEN.size:
        raise ProtocolError("snapshot frame truncated in its session header")
    try:
        session = bytes(view[offset:offset + slen]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable session id: {exc}") from None
    offset += slen
    (seq,) = _SEQ.unpack_from(view, offset)
    offset += _SEQ.size
    if not session or seq < 1:
        raise ProtocolError(
            "snapshot frame needs a non-empty session id and a sequence "
            "number >= 1"
        )
    (head_len,) = _HEAD_LEN.unpack_from(view, offset)
    offset += _HEAD_LEN.size
    if len(view) < offset + head_len:
        raise ProtocolError("snapshot frame truncated in its header")
    try:
        header = json.loads(bytes(view[offset:offset + head_len])
                            .decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable snapshot header: {exc}") from None
    offset += head_len
    body = view[offset:]
    _validate_header(header, len(body))
    return session, seq, header, body


def _validate_header(header: Dict, body_len: int) -> None:
    if not isinstance(header, dict):
        raise ProtocolError("snapshot header must be a JSON object")
    host = header.get("host")
    if not isinstance(host, str) or not host:
        raise ProtocolError('snapshot header needs a non-empty "host"')
    epoch = header.get("epoch")
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
        raise ProtocolError('snapshot header needs an integer "epoch" >= 0')
    disks = header.get("disks")
    if not isinstance(disks, list):
        raise ProtocolError('snapshot header needs a "disks" extent list')
    for extent in disks:
        if not isinstance(extent, dict):
            raise ProtocolError("snapshot extent must be a JSON object")
        off, length = extent.get("off"), extent.get("len")
        if (not isinstance(off, int) or not isinstance(length, int)
                or isinstance(off, bool) or isinstance(length, bool)
                or off < 0 or length < 0 or off + length > body_len):
            raise ProtocolError(
                f"snapshot extent {extent.get('vm')}/{extent.get('vdisk')} "
                f"overruns its {body_len}-byte payload"
            )
        if not isinstance(extent.get("vm"), str) \
                or not isinstance(extent.get("vdisk"), str):
            raise ProtocolError("snapshot extent needs vm and vdisk names")


def encode_host_snapshot(host: str, epoch) -> Tuple[Dict, bytes]:
    """Encode one sealed :class:`~repro.live.epochs.Epoch` for ``host``.

    Each disk's collector becomes one ``RPHCOL2`` record and an extent
    entry.  ``sealed_unix`` rides along so every aggregator up the
    tree can measure snapshot staleness against its own clock.
    """
    disks: List[Dict] = []
    chunks: List[bytes] = []
    offset = 0
    for (vm, vdisk), collector in epoch.service.collectors():
        record = collector_to_bytes(collector)
        disks.append({"vm": vm, "vdisk": vdisk,
                      "off": offset, "len": len(record)})
        chunks.append(record)
        offset += len(record)
    header = {
        "host": host,
        "epoch": epoch.index,
        "records": epoch.records,
        "start_ns": epoch.start_ns,
        "end_ns": epoch.end_ns,
        "sealed_unix": epoch.sealed_unix,
        "disks": disks,
    }
    payload = b"".join(chunks)
    if 23 + len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - huge hosts
        raise ProtocolError(
            f"snapshot payload of {len(payload)} bytes exceeds the frame "
            f"ceiling; rotate more often or split the host"
        )
    return header, payload


def snapshot_extents(header: Dict,
                     payload) -> Iterator[Tuple[Tuple[str, str], bytes]]:
    """Yield ``((vm, vdisk), record bytes)`` per extent, zero-copy
    sliced out of ``payload``."""
    view = memoryview(payload)
    for extent in header["disks"]:
        key = (extent["vm"], extent["vdisk"])
        yield key, bytes(view[extent["off"]:extent["off"] + extent["len"]])


def parse_parents(spec: Union[str, List]) -> List[Tuple[str, int]]:
    """Parse an uplink parent list.

    Accepts ``"host:port"``, ``"host:port,host:port"``, or an already
    structured list of ``(host, port)``/``[host, port]`` pairs.  Order
    matters: the first entry is the preferred parent, the rest are
    failover targets.
    """
    if isinstance(spec, str):
        entries: List = [part for part in spec.split(",") if part.strip()]
    else:
        entries = list(spec)
    parents: List[Tuple[str, int]] = []
    for entry in entries:
        if isinstance(entry, str):
            host, sep, port = entry.strip().rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"parent {entry!r} is not of the form host:port")
            parents.append((host, int(port)))
        else:
            host, port = entry
            parents.append((str(host), int(port)))
    if not parents:
        raise ValueError("at least one uplink parent is required")
    return parents


def fleet_rpc(address: Tuple[str, int], op: Dict,
              timeout: float = _RPC_TIMEOUT):
    """One control round-trip against an aggregator.

    Returns the parsed ``OK`` document or the ``TEXT`` payload
    (OpenMetrics); an ``ERROR`` response raises
    :class:`~repro.live.client.LiveError`.
    """
    from ..live.client import LiveError

    with socket.create_connection(address, timeout=timeout) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(pack_control(op))
        rfile = sock.makefile("rb")
        frame = read_frame(rfile)
    if frame is None:
        raise ValueError(f"aggregator at {address} closed mid-command")
    ftype, payload = frame
    if ftype == FRAME_ERROR:
        document = json.loads(payload.decode("utf-8"))
        raise LiveError(document.get("error", "aggregator error"))
    if ftype == FRAME_TEXT:
        return payload.decode("utf-8")
    if ftype != FRAME_OK:
        raise ValueError(f"unexpected aggregator frame 0x{ftype:02x}")
    return json.loads(payload.decode("utf-8"))
