"""Fleet-level queries over merged collectors.

The root of the tree answers the questions the Alibaba block-storage
study poses at fleet scale: top-k hottest ``(vm, vdisk)`` by any
metric, percentile estimates from merged bin distributions, and
per-host/per-tenant rollups.  Everything here operates on exact merged
collectors — the queries are cheap *because* the histograms are
associative; no raw records exist anywhere above the leaf daemons.

Metric specs
------------
A metric is either a scalar name (``commands``, ``reads``, ``writes``,
``bytes``, ``bytes_read``, ``bytes_written``) or a histogram path
``<family>[.<op>][.<stat>]`` where ``family`` is one of the six paper
families (``io_length``, ``seek_distance``, ``seek_distance_windowed``,
``interarrival_us``, ``outstanding``, ``latency_us``), ``op`` is
``read``/``write``/``all`` (default ``all``) and ``stat`` is
``sum``/``count``/``mean`` (default ``sum``).  So ``latency_us`` ranks
disks by total accumulated latency, ``latency_us.read.mean`` by mean
read latency, ``io_length.write.count`` by write-command count.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from ..core.collector import VscsiStatsCollector
from ..core.service import DiskKey

__all__ = [
    "FAMILIES",
    "histogram_percentile",
    "metric_value",
    "percentile_doc",
    "resolve_metric",
    "topk",
]

#: Histogram family attributes addressable in metric specs.
FAMILIES = ("io_length", "seek_distance", "seek_distance_windowed",
            "interarrival_us", "outstanding", "latency_us",
            "write_amp_pct", "gc_pause_us")

_OPS = ("read", "write", "all")
_STATS = ("sum", "count", "mean")

_SCALARS: Dict[str, Callable[[VscsiStatsCollector], float]] = {
    "commands": lambda c: c.commands,
    "reads": lambda c: c.read_commands,
    "writes": lambda c: c.write_commands,
    "bytes": lambda c: c.total_bytes,
    "bytes_read": lambda c: c.bytes_read,
    "bytes_written": lambda c: c.bytes_written,
}


def resolve_metric(spec: str) -> Callable[[VscsiStatsCollector], float]:
    """Compile a metric spec into ``collector -> value``.

    Raises ``ValueError`` (with the valid vocabulary) on an unknown
    spec, so a typo surfaces as a clean control-plane error.
    """
    scalar = _SCALARS.get(spec)
    if scalar is not None:
        return scalar
    parts = spec.split(".")
    family = parts[0]
    if family not in FAMILIES or len(parts) > 3:
        raise ValueError(
            f"unknown metric {spec!r}: expected one of "
            f"{sorted(_SCALARS)} or <family>[.<op>][.<stat>] with "
            f"family in {list(FAMILIES)}"
        )
    op = "all"
    stat = "sum"
    for part in parts[1:]:
        if part in _OPS:
            op = part
        elif part in _STATS:
            stat = part
        else:
            raise ValueError(
                f"unknown metric component {part!r} in {spec!r}: "
                f"op in {list(_OPS)}, stat in {list(_STATS)}"
            )

    def value(collector: VscsiStatsCollector) -> float:
        family_obj = getattr(collector, family)
        hist = {"read": family_obj.reads, "write": family_obj.writes,
                "all": family_obj.all}[op]
        if stat == "count":
            return hist.count
        if stat == "sum":
            return hist.total
        return hist.total / hist.count if hist.count else 0.0

    return value


def metric_value(collector: VscsiStatsCollector, spec: str) -> float:
    return resolve_metric(spec)(collector)


def topk(pairs: List[Tuple[DiskKey, VscsiStatsCollector]], metric: str,
         k: int = 10) -> List[Dict]:
    """Rank ``(disk, collector)`` pairs by ``metric``, descending.

    Ties break on the disk key (ascending) so the ranking is
    deterministic across runs and tree shapes.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    value = resolve_metric(metric)
    ranked = sorted(((value(collector), key)
                     for key, collector in pairs),
                    key=lambda item: (-item[0], item[1]))
    return [{"vm": vm, "vdisk": vdisk, "metric": metric, "value": val}
            for val, (vm, vdisk) in ranked[:k]]


def histogram_percentile(hist, q: float) -> Optional[float]:
    """Upper-edge percentile estimate from a binned histogram.

    Returns the smallest bin upper edge whose cumulative count reaches
    ``q`` of the total — a conservative (never-underestimating)
    estimate, which is the honest answer a bin distribution can give.
    The overflow bin maps to ``inf``; an empty histogram to ``None``.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    total = hist.count
    if not total:
        return None
    target = math.ceil(q * total)
    running = 0
    edges = hist.scheme.edges
    for index, count in enumerate(hist.counts):
        running += count
        if running >= target:
            if index < len(edges):
                return float(edges[index])
            return float("inf")
    return float("inf")  # pragma: no cover - counts always sum to total


def percentile_doc(collector: VscsiStatsCollector, family: str,
                   q: float, op: str = "all") -> Dict:
    """Percentile estimate document for one family of a merged
    collector (typically the fleet-wide aggregate)."""
    if family not in FAMILIES:
        raise ValueError(
            f"unknown family {family!r}: expected one of {list(FAMILIES)}")
    if op not in _OPS:
        raise ValueError(f"unknown op {op!r}: expected one of {list(_OPS)}")
    family_obj = getattr(collector, family)
    hist = {"read": family_obj.reads, "write": family_obj.writes,
            "all": family_obj.all}[op]
    estimate = histogram_percentile(hist, q)
    return {
        "family": family,
        "op": op,
        "q": q,
        "count": hist.count,
        "estimate": estimate if estimate != float("inf") else None,
        "overflow": estimate == float("inf"),
        "unit": hist.scheme.unit,
    }
