"""Hot-path ingestion throughput: scalar vs batched vs vectorized.

The paper's service costs almost nothing per command *in ESX*; in this
reproduction the analogous constraint is that replaying a large trace
into the histograms must not be bottlenecked by per-command Python
dispatch.  This benchmark replays the same synthetic 1M-command trace
through three ingestion paths and reports commands/sec:

* ``scalar`` — the seed's path: one engine event per command issue and
  one per completion, each making one ``HistogramService`` call, which
  fans out to ~12 scalar ``Histogram.insert`` calls.
* ``batch`` — the batched path: commands are ingested in columnar
  chunks through ``record_issue_batch`` / ``record_complete_batch``
  with the pure-Python histogram kernels (``backend="python"``).
* ``numpy`` — the same columnar chunks with the vectorized
  ``searchsorted``/``bincount`` kernels (skipped when numpy is absent).

All three paths must produce *identical* collector snapshots — the
benchmark asserts it — so the speedup is pure mechanics, not changed
semantics.

Run styles:

* ``pytest benchmarks/bench_hotpath.py --benchmark-only`` — smaller
  trace, wall time measured by pytest-benchmark (autosaved).
* ``python benchmarks/bench_hotpath.py`` — the full 1M-command replay;
  writes the committed throughput record ``BENCH_hotpath.json`` and
  fails (exit 1) unless batch >= 3x scalar.
"""

import json
import random
import sys
import time
from bisect import bisect_left
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.service import HistogramService
from repro.sim.engine import Engine

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_hotpath.json"

#: Commands per columnar chunk on the batched paths.
CHUNK = 8192

#: Full-run trace length (the acceptance gate's "1M-command replay").
FULL_N = 1_000_000

#: The pure-Python batch path must beat the scalar path by this factor.
MIN_SPEEDUP = 3.0


# ----------------------------------------------------------------------
# Synthetic trace
# ----------------------------------------------------------------------
def make_trace(n, seed=20070927):
    """Columnar synthetic trace: 70% sequential runs, bursty arrivals.

    Returns ``(times_ns, is_read, lbas, nblocks, latencies_ns)`` lists.
    """
    rng = random.Random(seed)
    rand = rng.random
    randrange = rng.randrange
    sizes = (8, 8, 8, 16, 64, 128)
    times = []
    reads = []
    lbas = []
    nblocks = []
    lats = []
    t = 0
    lba = randrange(0, 1 << 28)
    nb = 8
    for _ in range(n):
        if rand() < 0.7:
            lba += nb  # continue the sequential run
        else:
            lba = randrange(0, 1 << 28)
        nb = sizes[randrange(0, len(sizes))]
        if rand() < 0.25:
            pass  # same-timestamp burst: arrival tick does not advance
        else:
            t += randrange(1, 200_000)
        times.append(t)
        reads.append(rand() < 0.67)
        lbas.append(lba)
        nblocks.append(nb)
        lats.append(randrange(100_000, 20_000_000))
    return times, reads, lbas, nblocks, lats


# ----------------------------------------------------------------------
# Ingestion paths under test
# ----------------------------------------------------------------------
def run_scalar(cols):
    """Seed-style replay: one engine event + one service call per
    command issue and per completion."""
    times, reads, lbas, nblocks, lats = cols
    engine = Engine()
    service = HistogramService()
    service.enable()
    outstanding = [0]
    record_issue = service.record_issue
    record_complete = service.record_complete

    def issue(t, r, lba, nb):
        out = outstanding[0]
        outstanding[0] = out + 1
        record_issue("vm", "disk", t, r, lba, nb, out)

    def complete(t, r, lat):
        outstanding[0] -= 1
        record_complete("vm", "disk", t, r, lat)

    schedule = engine.schedule_at
    # All issue events are scheduled before any completion event, so
    # same-timestamp ties fire issue-first (the live vSCSI ordering).
    for t, r, lba, nb in zip(times, reads, lbas, nblocks):
        schedule(t, lambda t=t, r=r, lba=lba, nb=nb: issue(t, r, lba, nb))
    for t, r, lat in zip(times, reads, lats):
        ct = t + lat
        schedule(ct, lambda ct=ct, r=r, lat=lat: complete(ct, r, lat))
    engine.run()
    return service


def run_batch(cols, backend="python"):
    """Columnar replay: one engine event per CHUNK-command run, each
    making a single batched service call."""
    times, reads, lbas, nblocks, lats = cols
    n = len(times)
    engine = Engine()
    service = HistogramService()
    service.enable()

    # Outstanding-at-issue recovered from the trace timestamps: issues
    # fired so far minus completions strictly earlier (completions tie
    # *after* issues, matching the scalar event order).
    if backend == "numpy" and _np is not None:
        t_arr = _np.asarray(times, dtype=_np.int64)
        ct_arr = _np.sort(t_arr + _np.asarray(lats, dtype=_np.int64))
        out_col = _np.arange(n, dtype=_np.int64) - _np.searchsorted(
            ct_arr, t_arr, side="left"
        )
        r_arr = _np.asarray(reads, dtype=bool)
        lba_arr = _np.asarray(lbas, dtype=_np.int64)
        nb_arr = _np.asarray(nblocks, dtype=_np.int64)
        columns = (t_arr, r_arr, lba_arr, nb_arr, out_col)
    else:
        ctimes = sorted(t + lat for t, lat in zip(times, lats))
        out_col = [i - bisect_left(ctimes, t) for i, t in enumerate(times)]
        columns = (times, reads, lbas, nblocks, out_col)

    order = sorted(range(n), key=lambda i: times[i] + lats[i])
    items = []
    record_issue_batch = service.record_issue_batch
    record_complete_batch = service.record_complete_batch
    for lo in range(0, n, CHUNK):
        hi = min(lo + CHUNK, n)
        chunk = tuple(col[lo:hi] for col in columns)
        items.append((
            times[hi - 1],
            lambda chunk=chunk: record_issue_batch(
                "vm", "disk", *chunk, backend=backend
            ),
        ))
    for lo in range(0, n, CHUNK):
        idx = order[lo:lo + CHUNK]
        ct = [times[i] + lats[i] for i in idx]
        cr = [reads[i] for i in idx]
        cl = [lats[i] for i in idx]
        items.append((
            ct[-1],
            lambda ct=ct, cr=cr, cl=cl: record_complete_batch(
                "vm", "disk", ct, cr, cl, backend=backend
            ),
        ))
    engine.schedule_at_batch(items)
    engine.run()
    return service


def snapshot(service):
    collector = service.collector("vm", "disk")
    assert collector is not None
    return collector.to_dict()


# ----------------------------------------------------------------------
# pytest-benchmark entry points (smaller trace; autosaved)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:
    PYTEST_N = 60_000

    @pytest.fixture(scope="module")
    def trace_cols():
        return make_trace(PYTEST_N)

    @pytest.mark.benchmark(group="hotpath")
    def test_hotpath_scalar(benchmark, trace_cols):
        service = benchmark.pedantic(
            run_scalar, args=(trace_cols,), rounds=1, iterations=1
        )
        assert snapshot(service)["commands"] == PYTEST_N

    @pytest.mark.benchmark(group="hotpath")
    def test_hotpath_batch(benchmark, trace_cols):
        service = benchmark.pedantic(
            run_batch, args=(trace_cols,), rounds=1, iterations=1
        )
        assert snapshot(service) == snapshot(run_scalar(trace_cols))

    @pytest.mark.benchmark(group="hotpath")
    def test_hotpath_numpy(benchmark, trace_cols):
        if _np is None:
            pytest.skip("numpy not available")
        service = benchmark.pedantic(
            run_batch,
            args=(trace_cols,),
            kwargs={"backend": "numpy"},
            rounds=1,
            iterations=1,
        )
        assert snapshot(service) == snapshot(run_scalar(trace_cols))


# ----------------------------------------------------------------------
# Full-run script mode: measure, verify, record
# ----------------------------------------------------------------------
def measure(n=FULL_N, verify=True):
    """Replay an n-command trace through every path; return the record."""
    cols = make_trace(n)
    results = {}
    snapshots = {}
    modes = [("scalar", lambda: run_scalar(cols)),
             ("batch", lambda: run_batch(cols, backend="python"))]
    if _np is not None:
        modes.append(("numpy", lambda: run_batch(cols, backend="numpy")))
    for name, runner in modes:
        start = time.perf_counter()
        service = runner()
        elapsed = time.perf_counter() - start
        results[name] = {
            "seconds": round(elapsed, 3),
            "commands_per_sec": round(n / elapsed, 1),
        }
        if verify:
            snapshots[name] = snapshot(service)
    if verify:
        reference = snapshots["scalar"]
        for name, snap in snapshots.items():
            assert snap == reference, f"{name} snapshot diverged from scalar"
    scalar_cps = results["scalar"]["commands_per_sec"]
    for name in results:
        results[name]["speedup_vs_scalar"] = round(
            results[name]["commands_per_sec"] / scalar_cps, 2
        )
    return {
        "benchmark": "hotpath_replay",
        "commands": n,
        "chunk": CHUNK,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "numpy": getattr(_np, "__version__", None),
        "modes": results,
    }


def main(argv):
    n = FULL_N
    if len(argv) > 1:
        n = int(argv[1])
    record = measure(n)
    print(json.dumps(record, indent=2))
    if n == FULL_N:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    speedup = record["modes"]["batch"]["speedup_vs_scalar"]
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: batch speedup {speedup}x < {MIN_SPEEDUP}x")
        return 1
    print(f"OK: batch speedup {speedup}x >= {MIN_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
