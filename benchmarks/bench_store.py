"""Durable store throughput: append, crash recovery, range queries.

Measures the three paths an operator actually waits on, over a corpus
of ``FULL_N`` one-second epochs (10k by default — hours of rotated
history for a busy disk):

* ``append`` — epochs/sec through :meth:`HistogramStore.append` with
  batched fsync: snapshot encoding, WAL framing and the periodic
  auto-checkpoint into segments all included.
* ``recover`` — epochs/sec through a cold :meth:`HistogramStore.open`
  of a store whose entire corpus sits unsealed in the WAL — the
  worst-case crash-recovery scan (frame walk, CRC verify, meta decode,
  seq dedup).
* ``query`` — epochs/sec merged by range queries against the sealed
  (segment-resident) store: a sweep of window widths from a minute to
  the full span, each query decoding and merging every record its
  closure selects.

Before timing, the built store is verified: a full-range query must
equal the running merge of every appended snapshot — the throughput
being gated is provably the exact-characterization path.

The record shares the repo's gate schema — ``{"commands": N, "modes":
{label: {"commands_per_sec": ...}}}`` (commands = epochs here) — and
is registered in ``compare_bench.py`` with a clamp so the global
``--n`` scaling of the trace benchmarks doesn't balloon an epoch-count
benchmark.

Usage::

    python benchmarks/bench_store.py [N]    # full run writes BENCH_store.json
"""

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.collector import VscsiStatsCollector
from repro.store import HistogramStore

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_store.json"

#: Epochs in the full-run corpus.
FULL_N = 10_000

SECOND_NS = 1_000_000_000

#: Distinct collector states cycled through the corpus (encoding cost
#: depends on populated bins, so vary them).
VARIANTS = 16

#: Range-query widths swept in the query mode, in epochs.
QUERY_WIDTHS = (60, 900, 3600)

#: Queries per width.
QUERIES_PER_WIDTH = 8


def _collector(seed):
    collector = VscsiStatsCollector()
    t = 1_000
    state = seed * 2654435761 % (1 << 31) or 1
    for _ in range(24):
        state = (state * 1103515245 + 12345) % (1 << 31)
        t += 100 + state % 4000
        collector.on_issue(t, state % 2 == 0, state % (1 << 26),
                           1 << (state % 6 + 3), state % 12)
        latency = 20_000 + state % 800_000
        collector.on_complete(t + latency, state % 2 == 0, latency)
    return collector


def _build_wal_resident(path, n, variants):
    """Append ``n`` epochs, all left unsealed in the WAL."""
    store = HistogramStore.create(path, fsync="never",
                                  wal_seal_records=n + 1)
    t0 = time.perf_counter()
    for i in range(n):
        store.append("vm0", "d0", i * SECOND_NS, (i + 1) * SECOND_NS,
                     variants[i % VARIANTS])
    store.sync()
    elapsed = time.perf_counter() - t0
    store.close()
    return elapsed


def measure(n=FULL_N, verify=True):
    """Measure all three modes over an ``n``-epoch corpus."""
    variants = [_collector(seed) for seed in range(VARIANTS)]
    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        wal_path = workdir / "wal-resident"
        append_elapsed = _build_wal_resident(wal_path, n, variants)

        t0 = time.perf_counter()
        store = HistogramStore.open(wal_path, fsync="never")
        recover_elapsed = time.perf_counter() - t0
        assert store.recovered_wal_records == n, (
            f"recovery found {store.recovered_wal_records} of {n} records"
        )

        store.checkpoint()
        if verify:
            expected = VscsiStatsCollector()
            for i in range(n):
                expected = expected.merge(variants[i % VARIANTS])
            merged = store.query(0, n * SECOND_NS).service
            got = merged.collector("vm0", "d0")
            assert got == expected, "store merge diverged from direct merge"

        queried_epochs = 0
        t0 = time.perf_counter()
        for width in QUERY_WIDTHS:
            width = min(width, n)
            step = max(1, (n - width) // max(1, QUERIES_PER_WIDTH - 1))
            for lo in range(0, max(1, n - width + 1), step):
                result = store.query(lo * SECOND_NS,
                                     (lo + width) * SECOND_NS - 1)
                queried_epochs += result.epochs
        query_elapsed = time.perf_counter() - t0
        store.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "commands": n,
        "modes": {
            "append": {
                "seconds": round(append_elapsed, 3),
                "commands_per_sec": int(n / append_elapsed),
            },
            "recover": {
                "seconds": round(recover_elapsed, 3),
                "commands_per_sec": int(n / recover_elapsed),
            },
            "query": {
                "seconds": round(query_elapsed, 3),
                "queried_epochs": queried_epochs,
                "commands_per_sec": int(queried_epochs / query_elapsed),
            },
        },
    }


def main(argv):
    n = FULL_N
    if len(argv) > 1:
        n = int(argv[1])
    record = measure(n)
    print(json.dumps(record, indent=2))
    if n == FULL_N:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
