"""Durable store throughput: append, crash recovery, range queries.

Measures the three paths an operator actually waits on, over a corpus
of ``FULL_N`` one-second epochs (10k by default — hours of rotated
history for a busy disk):

* ``append`` — epochs/sec through :meth:`HistogramStore.append` with
  batched fsync: snapshot encoding, WAL framing and the final
  group-commit ``sync()`` barrier all included.
* ``recover`` — epochs/sec through a cold :meth:`HistogramStore.open`
  of a store whose entire corpus sits unsealed in the WAL — the
  worst-case crash-recovery scan (frame walk, CRC verify, meta decode,
  seq dedup).
* ``query`` — epochs/sec merged by range queries against the sealed
  (segment-resident) store: a sweep of window widths from a minute to
  an hour, each query decoding and merging every record its closure
  selects.

Before timing, the built store is verified: a range query must equal
the running merge of the corresponding appended snapshots — the
throughput being gated is provably the exact-characterization path.
(The verify window is the whole corpus up to ``VERIFY_FULL_MAX``
epochs, and a prefix window past it, so ``--n 200000`` CI runs don't
spend minutes in the Python reference merge.)

The absolute throughput floors from the PR 6 tentpole are recorded in
``TARGETS`` and enforced by ``--targets`` (CI runs it alongside the
regression gate): append ≥60k epochs/s (within 10× of live ingest),
range query >100k epochs/s, recover ≥2× the PR 5 baseline.

The record shares the repo's gate schema — ``{"benchmark": "store",
"commands": N, "python": ..., "numpy": ..., "modes": {label:
{"epochs_per_sec": ...}}}`` — and is registered in
``compare_bench.py``.  Every mode reports ``epochs_per_sec``, the
honest unit for this benchmark; the legacy ``commands_per_sec`` alias
(one release's migration shim) is gone, and the gate refuses records
that still carry unknown or mismatched units.

Usage::

    python benchmarks/bench_store.py [N]         # full run writes BENCH_store.json
    python benchmarks/bench_store.py --targets   # also enforce TARGETS
"""

import argparse
import gc
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.collector import VscsiStatsCollector
from repro.store import HistogramStore

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_store.json"

#: Epochs in the full-run corpus.
FULL_N = 10_000

#: The CI bench-gate corpus size.  Store throughput is not perfectly
#: scale-invariant (a 200k-epoch recovery scans 170 MB and holds the
#: whole tail in memory), so the gate compares a 200k run against a
#: committed 200k record instead of extrapolating from the 10k one.
GATE_N = 200_000
BENCH_200K_JSON = REPO_ROOT / "BENCH_store200k.json"

SECOND_NS = 1_000_000_000

#: Distinct collector states cycled through the corpus (encoding cost
#: depends on populated bins, so vary them).
VARIANTS = 16

#: Range-query widths swept in the query mode, in epochs.
QUERY_WIDTHS = (60, 900, 3600)

#: Queries per width.
QUERIES_PER_WIDTH = 8

#: Epochs appended untimed before the append measurement: first-call
#: bytecode specialization, allocator warm-up and page-cache state
#: otherwise bill a few percent to the first timed records.
WARMUP_N = 2_000

#: The corpus is built this many times and the append mode reports the
#: fastest build (``timeit``'s rule: the minimum is the measurement,
#: everything above it is scheduler/writeback noise).  The last build
#: is the corpus the recover and query modes run against.
BUILD_REPS = 3

#: Corpus size beyond which the pre-timing verify checks a prefix
#: window instead of the whole corpus (the Python reference merge is
#: O(n) at ~50us per epoch — exactness over the full range is already
#: Hypothesis-pinned by tests/test_store.py's compaction identity).
VERIFY_FULL_MAX = 20_000
VERIFY_PREFIX = 2_000

#: Absolute floors from the PR 6 tentpole, enforced by ``--targets``:
#: append within 10x of live ingest, query >100k epochs/s, recover at
#: least twice the PR 5 baseline record (32,199 epochs/s).
TARGETS = {
    "append": 60_000,
    "recover": 64_398,
    "query": 100_000,
}


def _collector(seed):
    collector = VscsiStatsCollector()
    t = 1_000
    state = seed * 2654435761 % (1 << 31) or 1
    for _ in range(24):
        state = (state * 1103515245 + 12345) % (1 << 31)
        t += 100 + state % 4000
        collector.on_issue(t, state % 2 == 0, state % (1 << 26),
                           1 << (state % 6 + 3), state % 12)
        latency = 20_000 + state % 800_000
        collector.on_complete(t + latency, state % 2 == 0, latency)
    return collector


def _build_wal_resident(path, n, variants):
    """Append ``n`` epochs, all left unsealed in the WAL."""
    store = HistogramStore.create(path, fsync="never",
                                  wal_seal_records=n + 1)
    t0 = time.perf_counter()
    for i in range(n):
        store.append("vm0", "d0", i * SECOND_NS, (i + 1) * SECOND_NS,
                     variants[i % VARIANTS])
    store.sync()
    elapsed = time.perf_counter() - t0
    store.close()
    return elapsed


def measure(n=FULL_N, verify=True):
    """Measure all three modes over an ``n``-epoch corpus.

    Runs with the cyclic GC paused (``timeit``'s rule, same reason):
    a 200k-epoch corpus allocates millions of objects, and generational
    collections scanning the growing heap otherwise dominate the
    recover mode by 2-3x.  Nothing in the store allocates reference
    cycles, so refcounting frees everything promptly either way.
    """
    variants = [_collector(seed) for seed in range(VARIANTS)]
    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        warmup = min(n, WARMUP_N)
        if warmup:
            _build_wal_resident(workdir / "warmup", warmup, variants)
            shutil.rmtree(workdir / "warmup", ignore_errors=True)

        wal_path = workdir / "wal-resident"
        append_elapsed = None
        for _rep in range(BUILD_REPS):
            if wal_path.exists():
                shutil.rmtree(wal_path)
            elapsed = _build_wal_resident(wal_path, n, variants)
            if append_elapsed is None or elapsed < append_elapsed:
                append_elapsed = elapsed

        recover_elapsed = None
        for _rep in range(BUILD_REPS):
            t0 = time.perf_counter()
            store = HistogramStore.open(wal_path, fsync="never")
            elapsed = time.perf_counter() - t0
            if recover_elapsed is None or elapsed < recover_elapsed:
                recover_elapsed = elapsed
            assert store.recovered_wal_records == n, (
                f"recovery found {store.recovered_wal_records} of {n} "
                f"records"
            )
            if _rep < BUILD_REPS - 1:
                store.close()

        store.checkpoint()
        if verify:
            verify_n = n if n <= VERIFY_FULL_MAX else VERIFY_PREFIX
            expected = VscsiStatsCollector()
            for i in range(verify_n):
                expected = expected.merge(variants[i % VARIANTS])
            merged = store.query(0, verify_n * SECOND_NS - 1).service
            got = merged.collector("vm0", "d0")
            assert got == expected, "store merge diverged from direct merge"

        queried_epochs = 0
        t0 = time.perf_counter()
        for width in QUERY_WIDTHS:
            width = min(width, n)
            step = max(1, (n - width) // max(1, QUERIES_PER_WIDTH - 1))
            for lo in range(0, max(1, n - width + 1), step):
                result = store.query(lo * SECOND_NS,
                                     (lo + width) * SECOND_NS - 1)
                queried_epochs += result.epochs
        query_elapsed = time.perf_counter() - t0
        store.close()
    finally:
        if gc_was_enabled:
            gc.enable()
        shutil.rmtree(workdir, ignore_errors=True)

    query_rate = int(queried_epochs / query_elapsed)
    return {
        "benchmark": "store",
        "commands": n,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "numpy": getattr(_np, "__version__", None),
        "modes": {
            "append": {
                "seconds": round(append_elapsed, 3),
                "epochs_per_sec": int(n / append_elapsed),
            },
            "recover": {
                "seconds": round(recover_elapsed, 3),
                "epochs_per_sec": int(n / recover_elapsed),
            },
            "query": {
                "seconds": round(query_elapsed, 3),
                "queried_epochs": queried_epochs,
                "epochs_per_sec": query_rate,
            },
        },
    }


def check_targets(record):
    """Return the modes falling short of their PR 6 absolute floors."""
    failures = []
    for mode, floor in TARGETS.items():
        got = record["modes"][mode]["epochs_per_sec"]
        if got < floor:
            failures.append(f"{mode}: {got}/s < target {floor}/s")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n", nargs="?", type=int, default=FULL_N,
                        help="epochs in the corpus (default %(default)s)")
    parser.add_argument("--targets", action="store_true",
                        help="fail unless every mode meets its TARGETS "
                             "floor")
    args = parser.parse_args(argv)
    record = measure(args.n)
    print(json.dumps(record, indent=2))
    if args.n == FULL_N:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    elif args.n == GATE_N:
        BENCH_200K_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_200K_JSON}")
    if args.targets:
        failures = check_targets(record)
        if failures:
            print("TARGET FAILURES: " + "; ".join(failures))
            return 1
        print("targets met: " + ", ".join(
            f"{m} >= {t}/s" for m, t in sorted(TARGETS.items())))
    return 0


if __name__ == "__main__":
    sys.exit(main())
