"""Live daemon loopback ingest throughput and rotate-stall latency.

The :mod:`repro.live` daemon promises that network ingestion costs
little over the in-process batch kernels: a ``DATA`` frame body *is*
the columnar trace dtype, so the server views it with ``np.frombuffer``
and lands in the same vectorized inserts the offline replay uses.  This
benchmark measures that claim end to end over a loopback socket:

* ``frames=4096`` / ``frames=32768`` — one publisher streaming a
  ``FULL_N``-command synthetic stream (the ``bench_parallel`` corpus
  generator) at two frame sizes.  Small frames stress the per-frame
  overhead (framing, ack round-trip, queue handoff); large frames
  amortize it toward raw kernel throughput.
* ``inprocess`` — the same stream through :class:`repro.live.DiskStream`
  directly (no socket), isolating the network layer's cost.
* ``cluster-workers=W`` — the multi-core edge: the same command count
  spread over ``CLUSTER_DISKS`` virtual disks, published concurrently
  into a :class:`repro.live.ClusterServer` of ``W`` worker processes
  sharing one port via ``SO_REUSEPORT``.  The reported rate is the
  *aggregate* commands/sec across all publishers — the number the
  tentpole gates.

Mid-publish, the ``frames=32768`` mode issues periodic ``rotate``
round-trips; their latencies are reported as ``rotate_ms`` p50/p99 —
the stall an operator pays for an epoch seal while ingestion runs.

Before any number is reported, every published snapshot is verified
byte-identical to an offline :func:`repro.parallel.replay_columns` run
over the same stream — the throughput being gated is provably the same
computation, cluster fan-in included.

The cluster gate is scale-matched to the host (``os.cpu_count()``):
>=2.5x the single-process ``frames=4096`` rate on a >=4-core host,
where three extra ingest processes should pay for the fan-in; a modest
win on two cores; and a floor on a single core, where the cluster adds
pure coordination overhead and merely has to stay within a bounded
constant of single-process (the record still proves the partitioned
path end to end).  Both ``workers`` and ``cpus`` land in the committed
record so the regression gate never compares across host sizes.

Run styles:

* ``pytest benchmarks/bench_live.py --benchmark-only`` — small stream,
  wall time measured by pytest-benchmark (autosaved).
* ``python benchmarks/bench_live.py [N]`` — the full stream; writes
  ``BENCH_live.json`` and exits 1 unless the gate holds.
"""

import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_parallel import _make_stream_python, _make_stream_numpy

from repro.live import (
    ClusterServer,
    DiskStream,
    LiveStatsClient,
    LiveStatsServer,
)
from repro.parallel.trace_io import records_to_columns, replay_columns

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_live.json"

#: Commands in the full-run stream.
FULL_N = 1_000_000

#: Loopback rotates interleaved into the large-frame publish.
ROTATES = 32

#: The large-frame loopback mode must sustain at least this many
#: commands/sec (a floor far under healthy throughput, catching
#: order-of-magnitude regressions like a fallback to per-record
#: parsing, not scheduler noise).
MIN_CPS = 200_000

#: p99 rotate stall must stay under this many milliseconds (2x the
#: committed single-process record's p99).
MAX_ROTATE_P99_MS = 5.2

#: Disks the cluster corpus is spread over — enough that consistent
#: hashing gives every worker a share.
CLUSTER_DISKS = 8


def default_workers(ncpu=None):
    """Worker processes the cluster mode runs: wide enough to use a
    multi-core host, never wider than four (the fan-in pipe and the
    coordinator thread stop being free somewhere past that)."""
    if ncpu is None:
        ncpu = os.cpu_count() or 1
    return 4 if ncpu >= 4 else 2


def min_cluster_speedup(ncpu):
    """Scale-matched cluster gate vs the single-process frames=4096
    rate: real scaling on a real multi-core host; on smaller hosts the
    cluster only pays coordination overhead and must stay within a
    bounded constant of single-process."""
    if ncpu >= 4:
        return 2.5
    if ncpu >= 2:
        return 1.15
    return 0.35


def make_stream(n, seed=20070927):
    """A single-disk stream in ``(issue, serial)`` order."""
    if _np is not None:
        return _make_stream_numpy(n, seed)
    return records_to_columns(_make_stream_python(n, seed))


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def run_loopback(columns, frame_records, rotates=0):
    """Publish ``columns`` to a loopback daemon; returns
    ``(seconds, rotate_seconds, snapshot_dict)``."""
    rotate_times = []
    with LiveStatsServer(port=0, shards=1, idle_timeout=None) as server:
        with LiveStatsClient(*server.address) as client:
            n = len(columns)
            bounds = ([round(i * n / (rotates + 1))
                       for i in range(1, rotates + 1)] + [n]
                      if rotates else [n])
            start = time.perf_counter()
            lo = 0
            for hi in bounds:
                if hi > lo:
                    client.publish_columns("bench-vm", "scsi0:0",
                                           _slice(columns, lo, hi),
                                           frame_records=frame_records,
                                           sort=False)
                lo = hi
                if len(rotate_times) < rotates:
                    t0 = time.perf_counter()
                    client.rotate()
                    rotate_times.append(time.perf_counter() - t0)
            elapsed = time.perf_counter() - start
            snap = client.snapshot(scope="all")
    return elapsed, rotate_times, snap["disks"]["bench-vm/scsi0:0"]


def _slice(columns, lo, hi):
    from repro.parallel.trace_io import TraceColumns

    return TraceColumns(*(col[lo:hi] for col in columns.columns()))


def make_cluster_corpus(n, disks=CLUSTER_DISKS, seed=20070927):
    """Per-disk streams totalling ``n`` commands."""
    per_disk = n // disks
    return {
        (f"vm{index // 4}", f"scsi0:{index % 4}"):
            make_stream(per_disk, seed + index)
        for index in range(disks)
    }


def run_cluster(streams, frame_records, workers):
    """Publish every disk's stream concurrently into a worker cluster.

    One publisher thread (and client) per disk — clients follow the
    consistent-hash redirects to each disk's owning worker, so after
    the first frame every publisher talks straight to its owner.
    Returns ``(seconds, snapshot_disks)`` where seconds is the
    aggregate wall time from first frame to last ack.
    """
    errors = []
    with ClusterServer(workers=workers, shards=1) as cluster:
        def publish(key, columns):
            try:
                with LiveStatsClient(*cluster.address) as client:
                    client.publish_columns(key[0], key[1], columns,
                                           frame_records=frame_records,
                                           sort=False)
            except Exception as exc:  # surfaced after join
                errors.append((key, exc))

        threads = [
            threading.Thread(target=publish, args=(key, columns),
                             name=f"bench-pub-{key[0]}-{key[1]}")
            for key, columns in streams.items()
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            key, exc = errors[0]
            raise RuntimeError(
                f"cluster publish failed for {key}: {exc}") from exc
        with LiveStatsClient(*cluster.address) as client:
            snap = client.snapshot(scope="all")
    return elapsed, snap["disks"]


def run_inprocess(columns, frame_records):
    """The same stream through DiskStream directly (no socket)."""
    stream = DiskStream()
    n = len(columns)
    start = time.perf_counter()
    for lo in range(0, n, frame_records):
        stream.ingest(_slice(columns, lo, min(lo + frame_records, n)))
    elapsed = time.perf_counter() - start
    return elapsed, stream.collector.to_dict()


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small stream; autosaved)
# ----------------------------------------------------------------------
if "pytest" in sys.modules:
    import pytest

    PYTEST_N = 60_000

    @pytest.fixture(scope="module")
    def stream_columns():
        return make_stream(PYTEST_N)

    @pytest.mark.benchmark(group="live")
    def test_live_loopback_ingest(benchmark, stream_columns):
        _elapsed, _rotates, snap = benchmark.pedantic(
            run_loopback, args=(stream_columns, 8192), rounds=1,
            iterations=1,
        )
        assert snap["commands"] == PYTEST_N

    @pytest.mark.benchmark(group="live")
    def test_live_inprocess_ingest(benchmark, stream_columns):
        _elapsed, snap = benchmark.pedantic(
            run_inprocess, args=(stream_columns, 8192), rounds=1,
            iterations=1,
        )
        assert snap["commands"] == PYTEST_N

    @pytest.mark.benchmark(group="live")
    def test_live_cluster_ingest(benchmark):
        streams = make_cluster_corpus(PYTEST_N, disks=4)
        _elapsed, disks = benchmark.pedantic(
            run_cluster, args=(streams, 4096, 2), rounds=1, iterations=1,
        )
        assert sum(d["commands"] for d in disks.values()) == sum(
            len(c) for c in streams.values())


# ----------------------------------------------------------------------
# Full-run script mode: measure, verify, record
# ----------------------------------------------------------------------
def measure(n=FULL_N, verify=True, workers=None):
    """Stream n commands through every mode; return the record."""
    ncpu = os.cpu_count() or 1
    if workers is None:
        workers = default_workers(ncpu)
    columns = make_stream(n)
    reference = replay_columns(columns).to_dict() if verify else None
    results = {}
    rotate_ms = None

    def check(label, snap):
        if verify:
            assert snap == reference, (
                f"{label} snapshot diverged from offline replay"
            )

    for frame_records in (4096, 32768):
        rotates = ROTATES if frame_records == 32768 else 0
        elapsed, rotate_times, snap = run_loopback(
            columns, frame_records, rotates=rotates
        )
        label = f"frames={frame_records}"
        check(label, snap)
        results[label] = {
            "seconds": round(elapsed, 3),
            "commands_per_sec": round(n / elapsed, 1),
        }
        if rotates:
            stalls = sorted(t * 1000 for t in rotate_times)
            rotate_ms = {
                "count": len(stalls),
                "p50": round(_percentile(stalls, 0.50), 3),
                "p99": round(_percentile(stalls, 0.99), 3),
                "max": round(stalls[-1], 3),
            }

    elapsed, snap = run_inprocess(columns, 32768)
    check("inprocess", snap)
    results["inprocess"] = {
        "seconds": round(elapsed, 3),
        "commands_per_sec": round(n / elapsed, 1),
    }

    # The multi-core edge: same total command count, partitioned over
    # CLUSTER_DISKS disks and published concurrently.  Verified per
    # disk against offline replay before the aggregate rate counts.
    streams = make_cluster_corpus(n)
    cluster_n = sum(len(c) for c in streams.values())
    elapsed, snap_disks = run_cluster(streams, 4096, workers)
    if verify:
        for (vm, vdisk), disk_columns in streams.items():
            got = snap_disks[f"{vm}/{vdisk}"]
            expected = replay_columns(disk_columns).to_dict()
            assert got == expected, (
                f"cluster snapshot for {vm}/{vdisk} diverged from "
                f"offline replay"
            )
    cluster_cps = round(cluster_n / elapsed, 1)
    results[f"cluster-workers={workers}"] = {
        "seconds": round(elapsed, 3),
        "commands_per_sec": cluster_cps,
        "workers": workers,
        "publishers": len(streams),
        "cpus": ncpu,
        "speedup_vs_single": round(
            cluster_cps / results["frames=4096"]["commands_per_sec"], 2),
    }

    return {
        "benchmark": "live_ingest",
        "commands": n,
        "rotates": ROTATES,
        "workers": workers,
        "cpus": ncpu,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "numpy": getattr(_np, "__version__", None),
        "rotate_ms": rotate_ms,
        "modes": results,
    }


def main(argv):
    n = FULL_N
    if len(argv) > 1:
        n = int(argv[1])
    record = measure(n)
    print(json.dumps(record, indent=2))
    if n == FULL_N:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    cps = record["modes"]["frames=32768"]["commands_per_sec"]
    p99 = record["rotate_ms"]["p99"]
    ok = True
    if cps < MIN_CPS:
        print(f"FAIL: frames=32768 ingest {cps} commands/sec < {MIN_CPS}")
        ok = False
    if p99 > MAX_ROTATE_P99_MS:
        print(f"FAIL: rotate p99 {p99}ms > {MAX_ROTATE_P99_MS}ms")
        ok = False
    workers = record["workers"]
    cluster = record["modes"][f"cluster-workers={workers}"]
    floor = min_cluster_speedup(record["cpus"])
    if cluster["speedup_vs_single"] < floor:
        print(f"FAIL: cluster-workers={workers} aggregate "
              f"{cluster['speedup_vs_single']}x single-process < "
              f"{floor}x floor at {record['cpus']} cpus")
        ok = False
    if not ok:
        return 1
    print(f"OK: {cps} commands/sec >= {MIN_CPS}, "
          f"rotate p99 {p99}ms <= {MAX_ROTATE_P99_MS}ms, "
          f"cluster {cluster['speedup_vs_single']}x single-process >= "
          f"{floor}x at {record['cpus']} cpus")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
