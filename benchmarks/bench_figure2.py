"""Figure 2 — Filebench OLTP on Solaris/UFS.

Regenerates the four panels: I/O length, seek distance (all, writes,
reads).  Paper shape: 4 KB and 8 KB I/Os; randomness everywhere.
"""

import pytest

from conftest import print_panel, print_series
from repro.experiments.figure2 import run_figure2

GIB = 1024**3
MIB = 1024**2


@pytest.mark.benchmark(group="figures")
def test_figure2_filebench_oltp_ufs(benchmark):
    result = benchmark.pedantic(
        run_figure2,
        kwargs={
            "duration_s": 20.0,
            "filesize": 2 * GIB,
            "logfilesize": 256 * MIB,
        },
        rounds=1,
        iterations=1,
    )
    print_panel("Figure 2(a) I/O Length Histogram", result.io_length)
    print_panel("Figure 2(b) Seek Distance Histogram", result.seek_distance)
    print_panel("Figure 2(c) Seek Distance (Writes)",
                result.seek_distance_writes)
    print_panel("Figure 2(d) Seek Distance (Reads)",
                result.seek_distance_reads)
    print_series("Figure 2 summary", [
        ("vSCSI commands/s", f"{result.ops_per_second:.0f}"),
        ("Filebench ops/s", f"{result.app_ops_per_second:.0f}"),
        ("dominant I/O size", result.dominant_size_label),
        ("I/Os <= 8 KB", f"{result.small_io_fraction:.0%}"),
        ("random (edge seeks)", f"{result.random:.0%}"),
    ])

    # Paper shape assertions.
    assert result.small_io_fraction > 0.95          # 4 KB and 8 KB only
    assert dict(result.io_length.nonzero_items()).get("4096", 0) > 0
    assert dict(result.io_length.nonzero_items()).get("8192", 0) > 0
    assert result.random > 0.5                      # spikes at the edges
    assert result.random_reads > 0.5
    assert result.random_writes > 0.5
    assert result.sequential_writes < 0.2           # nothing special
