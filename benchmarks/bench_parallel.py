"""Sharded parallel replay throughput: serial vs zero-copy vs jobs=N.

PR 1 made the per-command kernels fast; this benchmark measures the
scale-out layer on top of them.  A synthetic multi-vdisk corpus
(``FULL_N`` commands spread over ``VDISKS`` virtual disks, the same
70%-sequential/bursty mix as ``bench_hotpath``) is written as a
sharded trace directory and replayed through:

* ``jobs=1`` — the single-process baseline: the record-based reader
  (``read_binary``: one ``struct.unpack`` + one dataclass per record)
  feeding ``replay_into_collector(batch=True)`` per vdisk, collectors
  merged at the end.  This is exactly what the repo did before the
  ``repro.parallel`` subsystem existed.
* ``jobs=1-zerocopy`` — :class:`repro.parallel.ShardedReplay` inline
  (no pool): ``np.memmap`` columns straight into the numpy batch
  kernels, no per-record Python objects.
* ``jobs=2`` / ``jobs=4`` / ``jobs=<ncpu>`` — the same zero-copy
  replay fanned out over worker processes (fork where available, else
  spawn), per-worker collectors recombined through the merge API.
  Worker counts are capped at ``os.cpu_count()``: oversubscribed pools
  only measure scheduler thrash, so a single-core host runs no
  multi-process mode at all and a dual-core host stops at ``jobs=2``.

Every mode must produce byte-identical per-disk and aggregate
snapshots — the benchmark asserts it before reporting a single number,
so the speedup is pure mechanics, not changed semantics.  The
acceptance gate is scale-matched: the widest measured fan-out (or
``jobs=1-zerocopy`` on a single core, where the whole win is the
zero-copy I/O layer) must beat ``jobs=1`` by ``MIN_SPEEDUP``.  Every
mode record carries the host ``cpus`` it was measured on, so the
regression gate never compares fan-out numbers across differently
sized hosts.

Run styles:

* ``pytest benchmarks/bench_parallel.py --benchmark-only`` — small
  corpus, wall time measured by pytest-benchmark (autosaved).
* ``python benchmarks/bench_parallel.py [N] [--jobs J]`` — the full
  corpus; writes ``BENCH_parallel.json`` and exits 1 unless the gate
  holds.  ``--jobs`` widens (never oversubscribes) the measured set.
"""

import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.collector import VscsiStatsCollector
from repro.core.service import HistogramService
from repro.core.tracing import TraceRecord, read_binary, replay_into_collector
from repro.parallel import ShardedReplay, TraceColumns, write_shards
from repro.parallel.trace_io import load_manifest

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is optional
    _np = None

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_parallel.json"

#: Total commands across the corpus (the gate's "4M-command corpus").
FULL_N = 4_000_000

#: Virtual disks the corpus is spread over (two VMs x four disks).
VDISKS = 8

#: The widest gated mode must beat the serial jobs=1 baseline by this
#: factor (jobs=4 on a >=4-core host; the zero-copy inline mode on a
#: single core, where it is the whole win).
MIN_SPEEDUP = 3.0


def default_jobs_list(ncpu=None, extra=None):
    """Fan-out widths worth measuring on this host: the usual {2, 4}
    ladder plus the full core count, capped at ``ncpu`` — a pool wider
    than the machine only measures scheduler thrash."""
    if ncpu is None:
        ncpu = os.cpu_count() or 1
    candidates = {2, 4, ncpu}
    if extra:
        candidates.update(extra)
    return sorted(j for j in candidates if 1 < j <= ncpu)


# ----------------------------------------------------------------------
# Synthetic multi-vdisk corpus
# ----------------------------------------------------------------------
def _disk_key(index):
    return (f"vm{index // 4}", f"scsi0:{index % 4}")


def _make_stream_numpy(n, seed):
    """One vdisk's columns, vectorized: 70% sequential, bursty."""
    rng = _np.random.default_rng(seed)
    sizes = _np.array([8, 8, 8, 16, 64, 128], dtype=_np.int64)
    nblocks = sizes[rng.integers(0, len(sizes), n)]
    gaps = rng.integers(1, 200_000, n, dtype=_np.int64)
    gaps[rng.random(n) < 0.25] = 0  # same-timestamp bursts
    times = _np.cumsum(gaps)
    # Sequential runs: each random jump starts a segment at a fresh
    # LBA; within a segment each command continues where the previous
    # one ended.
    jump = rng.random(n) >= 0.7
    jump[0] = True
    segment = _np.cumsum(jump) - 1
    bases = rng.integers(0, 1 << 28, int(segment[-1]) + 1, dtype=_np.int64)
    before = _np.concatenate(
        [_np.zeros(1, dtype=_np.int64), _np.cumsum(nblocks)[:-1]]
    )
    seg_origin = before[jump][segment]
    lbas = bases[segment] + (before - seg_origin)
    latencies = rng.integers(100_000, 20_000_000, n, dtype=_np.int64)
    return TraceColumns(
        _np.arange(n, dtype=_np.uint64),
        times,
        times + latencies,
        lbas,
        nblocks.astype(_np.uint32),
        rng.random(n) < 0.67,
    )


def _make_stream_python(n, seed):
    """Pure fallback for numpy-less hosts (small n only)."""
    rng = random.Random(seed)
    sizes = (8, 8, 8, 16, 64, 128)
    records = []
    t = 0
    lba = rng.randrange(0, 1 << 28)
    nb = 8
    for i in range(n):
        if rng.random() < 0.7:
            lba += nb
        else:
            lba = rng.randrange(0, 1 << 28)
        nb = sizes[rng.randrange(0, len(sizes))]
        if rng.random() >= 0.25:
            t += rng.randrange(1, 200_000)
        lat = rng.randrange(100_000, 20_000_000)
        records.append(TraceRecord(i, t, t + lat, lba, nb,
                                   rng.random() < 0.67))
    return records


def make_corpus(directory, n=FULL_N, vdisks=VDISKS, seed=20070927):
    """Write an n-command, ``vdisks``-disk sharded corpus; returns the
    manifest."""
    per_disk = n // vdisks
    streams = {}
    for index in range(vdisks):
        if _np is not None:
            stream = _make_stream_numpy(per_disk, seed + index)
        else:
            stream = _make_stream_python(per_disk, seed + index)
        streams[_disk_key(index)] = stream
    return write_shards(streams, directory)


# ----------------------------------------------------------------------
# Replay paths under test
# ----------------------------------------------------------------------
def run_serial(directory):
    """jobs=1 baseline: record-based reader + batched replay per vdisk,
    merged through the same service API the parallel path uses."""
    manifest = load_manifest(directory)
    service = HistogramService()
    backend = None if _np is None else "numpy"
    for segment in manifest["segments"]:
        with open(Path(directory) / segment["file"], "rb") as fileobj:
            records = read_binary(fileobj)
        collector = VscsiStatsCollector()
        replay_into_collector(records, collector, batch=True, backend=backend)
        service.adopt((segment["vm"], segment["vdisk"]), collector)
    return service


def run_sharded(directory, jobs):
    """Zero-copy sharded replay at a given worker count."""
    return ShardedReplay(directory, jobs=jobs).run().service


def snapshot(service):
    return {f"{vm}/{vdisk}": collector.to_dict()
            for (vm, vdisk), collector in service.collectors()}


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small corpus; autosaved)
# ----------------------------------------------------------------------
# Defined only under a live pytest run: keeps script mode (and any
# spawn-started worker that re-imports this module) from paying the
# pytest import.
if "pytest" in sys.modules:
    import pytest

    PYTEST_N = 80_000
    PYTEST_VDISKS = 4

    @pytest.fixture(scope="module")
    def corpus_dir(tmp_path_factory):
        directory = tmp_path_factory.mktemp("corpus")
        make_corpus(directory, n=PYTEST_N, vdisks=PYTEST_VDISKS)
        return directory

    @pytest.mark.benchmark(group="parallel")
    def test_parallel_serial_baseline(benchmark, corpus_dir):
        service = benchmark.pedantic(
            run_serial, args=(corpus_dir,), rounds=1, iterations=1
        )
        assert sum(c.commands for _k, c in service.collectors()) == PYTEST_N

    @pytest.mark.benchmark(group="parallel")
    def test_parallel_zerocopy_inline(benchmark, corpus_dir):
        service = benchmark.pedantic(
            run_sharded, args=(corpus_dir, 1), rounds=1, iterations=1
        )
        assert snapshot(service) == snapshot(run_serial(corpus_dir))

    @pytest.mark.benchmark(group="parallel")
    def test_parallel_two_workers(benchmark, corpus_dir):
        service = benchmark.pedantic(
            run_sharded, args=(corpus_dir, 2), rounds=1, iterations=1
        )
        assert snapshot(service) == snapshot(run_serial(corpus_dir))


# ----------------------------------------------------------------------
# Full-run script mode: measure, verify, record
# ----------------------------------------------------------------------
def measure(n=FULL_N, vdisks=VDISKS, verify=True, jobs=None):
    """Replay an n-command corpus through every mode; return the record.

    ``jobs`` widens the measured fan-out set; it is still capped at
    the host's core count.
    """
    ncpu = os.cpu_count() or 1
    jobs_list = default_jobs_list(ncpu, extra=[jobs] if jobs else None)
    with tempfile.TemporaryDirectory(prefix="bench_parallel_") as directory:
        make_corpus(directory, n=n, vdisks=vdisks)
        results = {}
        reference = None

        def timed(label, runner):
            nonlocal reference
            start = time.perf_counter()
            service = runner()
            elapsed = time.perf_counter() - start
            results[label] = {
                "seconds": round(elapsed, 3),
                "commands_per_sec": round(n / elapsed, 1),
                "cpus": ncpu,
            }
            if verify:
                snap = snapshot(service)
                if reference is None:
                    reference = snap
                else:
                    assert snap == reference, (
                        f"{label} snapshot diverged from jobs=1"
                    )

        timed("jobs=1", lambda: run_serial(directory))
        timed("jobs=1-zerocopy", lambda: run_sharded(directory, 1))
        for jobs in jobs_list:
            timed(f"jobs={jobs}", lambda jobs=jobs: run_sharded(directory,
                                                                jobs))
    base_cps = results["jobs=1"]["commands_per_sec"]
    for label in results:
        results[label]["speedup_vs_jobs1"] = round(
            results[label]["commands_per_sec"] / base_cps, 2
        )
    return {
        "benchmark": "parallel_replay",
        "commands": n,
        "vdisks": vdisks,
        "cpus": ncpu,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "numpy": getattr(_np, "__version__", None),
        "modes": results,
    }


def gate_mode(modes):
    """The label whose speedup the acceptance gate checks: the widest
    measured fan-out, or the zero-copy inline mode on a single core."""
    fanouts = sorted(
        (int(label.split("=", 1)[1]), label)
        for label in modes
        if label.startswith("jobs=") and label[5:].isdigit()
        and int(label[5:]) > 1
    )
    return fanouts[-1][1] if fanouts else "jobs=1-zerocopy"


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("n", nargs="?", type=int, default=FULL_N,
                        help="corpus commands (default %(default)s)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="also measure this fan-out width "
                             "(capped at os.cpu_count())")
    args = parser.parse_args(argv)
    record = measure(args.n, jobs=args.jobs)
    print(json.dumps(record, indent=2))
    if args.n == FULL_N and args.jobs is None:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    label = gate_mode(record["modes"])
    gate = record["modes"][label]
    if gate["speedup_vs_jobs1"] < MIN_SPEEDUP:
        print(
            f"FAIL: {label} speedup {gate['speedup_vs_jobs1']}x < "
            f"{MIN_SPEEDUP}x vs jobs=1"
        )
        return 1
    print(f"OK: {label} speedup {gate['speedup_vs_jobs1']}x >= "
          f"{MIN_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
