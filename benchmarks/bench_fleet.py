"""Fleet aggregation-tree throughput and snapshot staleness.

The :mod:`repro.fleet` tier promises that fleet scale costs merges,
not records: a sealed epoch travels the tree as one small ``RPHCOL2``
snapshot frame per host, every level deduplicates and merges exactly,
and the root's global state is byte-identical to a single collector
that had seen everything.  This benchmark measures that promise at the
acceptance-criteria scale — ``FULL_N`` simulated publisher hosts, each
sealing one epoch, pushed through a 3-level tree (``EDGES`` edge
forwarders → 2 regional aggregators → 1 root):

* ``tree-3level`` — end-to-end: all ``n`` host snapshots enqueued at
  the edges, the tree drained to the root.  The rate is root-applied
  snapshots/sec; ``staleness_p99_ms`` is the p99 wall-clock age of a
  snapshot (sealed→applied at the root) measured by the root's ledger,
  gated against an absolute ceiling (a tree that buffers or stalls
  shows up here even if throughput looks fine).
* ``ledger-direct`` — the same snapshots applied straight into a
  :class:`repro.fleet.FleetLedger` (no sockets, no relay), isolating
  the merge/dedup kernel from the transport.

Before any number is reported, the root's global snapshot is verified
byte-identical to a one-shot merge of every host's payload — the
throughput being gated is provably the same computation.

Run styles:

* ``pytest benchmarks/bench_fleet.py --benchmark-only`` — small fleet,
  wall time measured by pytest-benchmark (autosaved).
* ``python benchmarks/bench_fleet.py [N]`` — the full fleet; writes
  ``BENCH_fleet.json`` and exits 1 unless the gate holds.
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core.collector import VscsiStatsCollector
from repro.core.tracing import TraceRecord, replay_into_collector
from repro.fleet import FleetAggregator, FleetLedger, FleetUplink
from repro.store.codec import collector_to_bytes, merge_collector_payloads

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_fleet.json"

#: Simulated publisher hosts in the full run (the acceptance scale).
FULL_N = 10_000

#: Edge forwarder uplinks (half feed each regional); each carries the
#: snapshots of ``n / EDGES`` hosts over one sequenced link.
EDGES = 8

#: Distinct (vm, vdisk) keys the fleet's hosts map onto — enough that
#: per-disk merge lists grow past COMPACT_AT and the compaction path
#: is part of what is measured.
DISKS = 32

#: Commands inside the one synthetic epoch every host seals.
EPOCH_COMMANDS = 400

#: The end-to-end tree must sustain at least this many root-applied
#: snapshots/sec (an order-of-magnitude floor, not a tuning target).
MIN_SPS = 300

#: Absolute ceiling on the root-measured p99 snapshot staleness for
#: the full drain.  Generous on purpose: at FULL_N the last snapshot
#: has waited behind the whole fleet, so this bounds "the tree keeps
#: moving", not per-hop latency.
STALENESS_P99_CEILING_MS = 15_000.0


def _records(n, seed=7, start_serial=0, start_ns=0):
    """Deterministic synthetic trace in stream order."""
    state = seed
    out = []
    t = start_ns
    for i in range(n):
        state = (state * 1103515245 + 12345) % (1 << 31)
        t += 200 + state % 1500
        latency = 20_000 + (state >> 8) % 400_000
        out.append(TraceRecord(
            start_serial + i, t, t + latency,
            (state >> 3) % (1 << 28), 1 << (state % 6 + 3),
            state % 10 < 7,
        ))
    return out


def make_fleet_snapshots(n):
    """One sealed-epoch snapshot per simulated host.

    One collector payload is synthesized per disk key and shared by
    every host mapped onto that key — realistic enough (the aggregator
    never inspects payload bytes until merge time) and cheap enough to
    set up a 10k-host fleet in milliseconds.  ``sealed_unix`` is
    stamped later, at enqueue time, so staleness measures the tree.
    """
    payloads = []
    for disk in range(DISKS):
        collector = replay_into_collector(
            _records(EPOCH_COMMANDS, seed=77 + disk),
            VscsiStatsCollector(), batch=True)
        payloads.append(collector_to_bytes(collector))
    snapshots = []
    for index in range(n):
        disk = index % DISKS
        payload = payloads[disk]
        header = {
            "host": f"host-{index:05d}",
            "epoch": 0,
            "records": EPOCH_COMMANDS,
            "start_ns": 0,
            "end_ns": 60_000_000_000,
            "disks": [{"vm": f"vm-{disk:02d}", "vdisk": "scsi0:0",
                       "off": 0, "len": len(payload)}],
        }
        snapshots.append((header, payload))
    return snapshots


def expected_disks(snapshots):
    """One-shot merge of every host's payload, per disk."""
    per_disk = {}
    for header, payload in snapshots:
        extent = header["disks"][0]
        key = f"{extent['vm']}/{extent['vdisk']}"
        per_disk.setdefault(key, []).append(payload)
    return {key: merge_collector_payloads(records).to_dict()
            for key, records in sorted(per_disk.items())}


def run_tree(snapshots):
    """Drain ``snapshots`` through edges → 2 regionals → root.

    Returns ``(seconds, root_info, root_disks)`` where seconds spans
    first enqueue to the last regional relay ack.
    """
    with FleetAggregator(port=0, node="bench-root") as root:
        with FleetAggregator(port=0, node="bench-reg-a",
                             parents=[root.address]) as reg_a, \
             FleetAggregator(port=0, node="bench-reg-b",
                             parents=[root.address]) as reg_b:
            regionals = (reg_a, reg_b)
            edges = [
                FleetUplink([regionals[e % 2].address],
                            node=f"bench-edge-{e}", jitter_seed=e).start()
                for e in range(EDGES)
            ]
            try:
                start = time.perf_counter()
                for index, (header, payload) in enumerate(snapshots):
                    header = dict(header, sealed_unix=time.time())
                    edges[index % EDGES].enqueue(header, payload)
                for edge in edges:
                    if not edge.drain(timeout=600.0):
                        raise RuntimeError("edge uplink failed to drain")
                for regional in regionals:
                    if not regional.uplink.drain(timeout=600.0):
                        raise RuntimeError("regional relay failed to drain")
                elapsed = time.perf_counter() - start
            finally:
                for edge in edges:
                    edge.close()
            info = root.info()
            disks = root.snapshot_dict()["disks"]
    return elapsed, info, disks


def run_ledger_direct(snapshots):
    """The same snapshots applied straight into one FleetLedger."""
    ledger = FleetLedger()
    start = time.perf_counter()
    for header, payload in snapshots:
        ledger.apply(header, payload)
    elapsed = time.perf_counter() - start
    return elapsed, ledger


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small fleet; autosaved)
# ----------------------------------------------------------------------
if "pytest" in sys.modules:
    import pytest

    PYTEST_N = 400

    @pytest.mark.benchmark(group="fleet")
    def test_fleet_tree_drain(benchmark):
        snapshots = make_fleet_snapshots(PYTEST_N)
        _elapsed, info, _disks = benchmark.pedantic(
            run_tree, args=(snapshots,), rounds=1, iterations=1,
        )
        assert info["epochs_applied_total"] == PYTEST_N

    @pytest.mark.benchmark(group="fleet")
    def test_fleet_ledger_direct(benchmark):
        snapshots = make_fleet_snapshots(PYTEST_N)
        _elapsed, ledger = benchmark.pedantic(
            run_ledger_direct, args=(snapshots,), rounds=1, iterations=1,
        )
        assert ledger.epochs_applied_total == PYTEST_N


# ----------------------------------------------------------------------
# Full-run script mode: measure, verify, record
# ----------------------------------------------------------------------
def measure(n=FULL_N, verify=True):
    """Push an n-host fleet through both modes; return the record."""
    snapshots = make_fleet_snapshots(n)
    reference = expected_disks(snapshots) if verify else None
    results = {}

    elapsed, info, disks = run_tree(snapshots)
    if verify:
        assert info["epochs_applied_total"] == n, (
            f"root applied {info['epochs_applied_total']} of {n} epochs")
        assert info["hosts"] == n
        assert json.dumps(disks, sort_keys=True) \
            == json.dumps(reference, sort_keys=True), (
            "root snapshot diverged from one-shot merge")
    staleness = info["staleness"]
    results["tree-3level"] = {
        "seconds": round(elapsed, 3),
        "snapshots_per_sec": round(n / elapsed, 1),
        "hosts": n,
        "levels": 3,
        "edges": EDGES,
        "staleness_p99_ms": round(staleness["p99"] * 1000.0, 1),
        "staleness_p50_ms": round(staleness["p50"] * 1000.0, 1),
        "staleness_p99_ceiling_ms": STALENESS_P99_CEILING_MS,
    }

    elapsed, ledger = run_ledger_direct(snapshots)
    if verify:
        got = {f"{vm}/{vdisk}": collector.to_dict()
               for (vm, vdisk), collector in ledger.global_pairs()}
        assert json.dumps(got, sort_keys=True) \
            == json.dumps(reference, sort_keys=True), (
            "direct ledger diverged from one-shot merge")
    results["ledger-direct"] = {
        "seconds": round(elapsed, 3),
        "snapshots_per_sec": round(n / elapsed, 1),
    }

    return {
        "benchmark": "fleet_tree",
        "commands": n,
        "disks": DISKS,
        "epoch_commands": EPOCH_COMMANDS,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "modes": results,
    }


def main(argv):
    n = FULL_N
    if len(argv) > 1:
        n = int(argv[1])
    record = measure(n)
    print(json.dumps(record, indent=2))
    if n == FULL_N:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    tree = record["modes"]["tree-3level"]
    sps = tree["snapshots_per_sec"]
    p99_ms = tree["staleness_p99_ms"]
    ok = True
    if sps < MIN_SPS:
        print(f"FAIL: tree drain {sps} snapshots/sec < {MIN_SPS}")
        ok = False
    if p99_ms > STALENESS_P99_CEILING_MS:
        print(f"FAIL: staleness p99 {p99_ms}ms > "
              f"{STALENESS_P99_CEILING_MS}ms ceiling")
        ok = False
    if not ok:
        return 1
    print(f"OK: {sps} snapshots/sec >= {MIN_SPS}, staleness p99 "
          f"{p99_ms}ms <= {STALENESS_P99_CEILING_MS}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
