"""Figure 5 — large file copy: Windows XP (64 KB) vs Vista (1 MB).

Paper shape: Vista's I/Os are 16x larger, fewer, very sequential, and
individually slower.
"""

import pytest

from conftest import print_panel, print_series
from repro.experiments.figure5 import run_figure5

GIB = 1024**3


@pytest.mark.benchmark(group="figures")
def test_figure5_file_copy_xp_vs_vista(benchmark):
    result = benchmark.pedantic(
        run_figure5,
        kwargs={"duration_s": 10.0, "file_bytes": 4 * GIB},
        rounds=1,
        iterations=1,
    )
    print_panel("Figure 5(a) Latency (XP Pro)", result.xp.latency)
    print_panel("Figure 5(a) Latency (Vista Enterprise)",
                result.vista.latency)
    print_panel("Figure 5(b) I/O Length (XP Pro)", result.xp.io_length)
    print_panel("Figure 5(b) I/O Length (Vista Enterprise)",
                result.vista.io_length)
    print_panel("Figure 5(c) Seek Distance (XP Pro)",
                result.xp.seek_distance)
    print_panel("Figure 5(c) Seek Distance (Vista Enterprise)",
                result.vista.seek_distance)
    print_series("Figure 5 summary", [
        ("XP commands (10 s)", result.xp.commands),
        ("Vista commands (10 s)", result.vista.commands),
        ("XP dominant size", result.xp.dominant_size_label),
        ("Vista dominant size", result.vista.dominant_size_label),
        ("Vista/XP mean size", f"{result.vista_to_xp_size_ratio:.1f}x"),
        ("XP median latency bin (us)", result.xp.median_latency_bin_us),
        ("Vista median latency bin (us)",
         result.vista.median_latency_bin_us),
    ])

    # Paper shape assertions.
    assert result.xp.dominant_size_label == "65536"       # 64 KB
    assert result.vista.dominant_size_label == ">524288"  # 1 MB
    assert 10 < result.vista_to_xp_size_ratio < 20        # ~16x
    assert result.vista_fewer_commands
    assert result.vista_higher_latency
    assert result.xp.sequential > 0.8
    assert result.vista.sequential > 0.8
