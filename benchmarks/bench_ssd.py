"""DFTL flash-translation-layer throughput under a zipfian write mix.

The :mod:`repro.storage.ssd` backend promises that flash realism —
CMT translation misses, erase-block GC, write-amplification
accounting — stays cheap enough to sit under a closed-loop workload
without dominating the simulation.  Two modes:

* ``ftl-zipfian`` — the FTL kernel alone: ``n`` 8-sector ops (80%
  writes, 90/10 zipfian hot/cold) driven straight into
  :class:`repro.storage.ssd.Ftl`.  This is the per-command mapping +
  GC cost with no event loop around it.  Before the rate is reported,
  a half-scale replay runs twice with the same seed and must produce
  the identical cumulative write-amplification and GC count — the
  throughput being gated is provably deterministic.
* ``array-engine`` — the same mix through :class:`SsdArray` on the
  discrete-event engine, 16 ops in flight, completions gating issues:
  the end-to-end path a vdisk extent exercises.

Run styles:

* ``pytest benchmarks/bench_ssd.py --benchmark-only`` — wall time per
  mode measured by pytest-benchmark (autosaved).
* ``python benchmarks/bench_ssd.py [N]`` — the full run; writes
  ``BENCH_ssd.json`` at full scale and exits 1 unless WA > 1x and the
  GC pause histogram is nonzero.
"""

import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.sim.engine import Engine
from repro.storage.ssd import Ftl, SsdModel, ssd_array

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_ssd.json"

#: Ops in the full run.  Small enough that CI re-measures in seconds,
#: large enough that the drive's over-provisioning drains and steady-
#: state GC (the expensive path) dominates the tail of the run.
FULL_N = 200_000

#: Drive geometry for every mode: 128 MiB logical, 4 channels, a CMT
#: small enough that the zipfian cold tail misses translations.
CAPACITY_BLOCKS = 262_144
MODEL_KWARGS = dict(channels=4, cmt_entries=2_048)

#: Zipfian mix: 90% of traffic to the hottest 10% of the LBA space,
#: 80% writes — the personality that forces GC and WA > 1.
HOT_DATA = 0.10
HOT_TRAFFIC = 0.90
READ_FRACTION = 0.20
IO_SECTORS = 8


def _ops(n, capacity_blocks, seed):
    """The op stream: (lba, is_read) pairs, seedable and backendless."""
    rng = random.Random(seed)
    slots = capacity_blocks // IO_SECTORS
    hot_slots = max(1, int(slots * HOT_DATA))
    out = []
    for _ in range(n):
        if rng.random() < HOT_TRAFFIC:
            slot = rng.randrange(hot_slots)
        else:
            slot = hot_slots + rng.randrange(slots - hot_slots)
        out.append((slot * IO_SECTORS, rng.random() < READ_FRACTION))
    return out


def _fresh_ftl():
    model = SsdModel(capacity_blocks=CAPACITY_BLOCKS, **MODEL_KWARGS)
    ftl = Ftl(model)
    ftl.prefill()
    return ftl


def run_ftl(ops):
    """Drive the bare FTL; returns (elapsed, wa_pct, gc_runs)."""
    ftl = _fresh_ftl()
    start = time.perf_counter()
    for lba, is_read in ops:
        if is_read:
            ftl.read(lba, IO_SECTORS)
        else:
            ftl.write(lba, IO_SECTORS)
    elapsed = time.perf_counter() - start
    return elapsed, ftl.wa_pct(), ftl.gc_runs


def run_array(ops, outstanding=16):
    """The same stream through SsdArray on the engine, closed-loop."""
    engine = Engine()
    ssd = ssd_array(engine, capacity_blocks=CAPACITY_BLOCKS,
                    **MODEL_KWARGS)
    pending = list(reversed(ops))
    state = {"done": 0}

    def issue():
        if not pending:
            return
        lba, is_read = pending.pop()
        ssd.submit(lba, IO_SECTORS, is_read, complete)

    def complete():
        state["done"] += 1
        issue()

    start = time.perf_counter()
    for _ in range(min(outstanding, len(pending))):
        issue()
    engine.run()
    elapsed = time.perf_counter() - start
    assert state["done"] == len(ops)
    return elapsed, ssd.ftl.wa_pct(), ssd.ftl.gc_runs


# ----------------------------------------------------------------------
# pytest-benchmark mode
# ----------------------------------------------------------------------
PYTEST_N = 30_000

try:
    import pytest
except ImportError:  # script mode does not need pytest
    pytest = None

if pytest is not None:

    @pytest.mark.benchmark(group="ssd")
    def test_ftl_zipfian(benchmark):
        ops = _ops(PYTEST_N, CAPACITY_BLOCKS, seed=0)
        _elapsed, wa_pct, gc_runs = benchmark.pedantic(
            run_ftl, args=(ops,), rounds=1, iterations=1,
        )
        assert wa_pct is not None and wa_pct > 100
        assert gc_runs > 0

    @pytest.mark.benchmark(group="ssd")
    def test_array_engine(benchmark):
        ops = _ops(PYTEST_N, CAPACITY_BLOCKS, seed=0)
        _elapsed, wa_pct, gc_runs = benchmark.pedantic(
            run_array, args=(ops,), rounds=1, iterations=1,
        )
        assert wa_pct is not None and wa_pct > 100
        assert gc_runs > 0


# ----------------------------------------------------------------------
# Full-run script mode: measure, verify, record
# ----------------------------------------------------------------------
def measure(n=FULL_N, verify=True):
    """Run both modes at ``n`` ops; return the benchmark record."""
    ops = _ops(n, CAPACITY_BLOCKS, seed=0)

    if verify:
        # Same seed, same stream => bit-identical WA and GC count.
        half = ops[: max(1, n // 2)]
        _e1, wa1, gc1 = run_ftl(half)
        _e2, wa2, gc2 = run_ftl(half)
        assert (wa1, gc1) == (wa2, gc2), (
            f"FTL replay diverged: {(wa1, gc1)} != {(wa2, gc2)}")

    results = {}
    elapsed, wa_pct, gc_runs = run_ftl(ops)
    if verify:
        assert wa_pct is not None and wa_pct > 100, (
            f"zipfian churn must amplify writes, wa_pct={wa_pct}")
        assert gc_runs > 0, "zipfian churn must trigger GC"
    results["ftl-zipfian"] = {
        "seconds": round(elapsed, 3),
        "commands_per_sec": round(n / elapsed, 1),
        "wa_pct": wa_pct,
        "gc_runs": gc_runs,
    }

    elapsed, wa_pct, gc_runs = run_array(ops)
    results["array-engine"] = {
        "seconds": round(elapsed, 3),
        "commands_per_sec": round(n / elapsed, 1),
        "wa_pct": wa_pct,
        "gc_runs": gc_runs,
    }

    return {
        "benchmark": "ssd_ftl",
        "commands": n,
        "capacity_blocks": CAPACITY_BLOCKS,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "modes": results,
    }


def main(argv):
    n = FULL_N
    if len(argv) > 1:
        n = int(argv[1])
    record = measure(n)
    print(json.dumps(record, indent=2))
    if n == FULL_N:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    ftl_mode = record["modes"]["ftl-zipfian"]
    ok = True
    if not (ftl_mode["wa_pct"] and ftl_mode["wa_pct"] > 100):
        print(f"FAIL: wa_pct {ftl_mode['wa_pct']} not > 100")
        ok = False
    if ftl_mode["gc_runs"] <= 0:
        print("FAIL: GC never ran")
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
