"""Figure 3 — Filebench OLTP on Solaris/ZFS.

Same workload as Figure 2 through the ZFS model.  Paper shape: 80-128
KB I/Os; writes sequentialized by copy-on-write; reads still random;
OLTP performance significantly higher than on UFS.
"""

import pytest

from conftest import print_panel, print_series
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3

GIB = 1024**3
MIB = 1024**2

_KWARGS = {
    "duration_s": 20.0,
    "filesize": 2 * GIB,
    "logfilesize": 256 * MIB,
}


@pytest.mark.benchmark(group="figures")
def test_figure3_filebench_oltp_zfs(benchmark):
    result = benchmark.pedantic(
        run_figure3, kwargs=_KWARGS, rounds=1, iterations=1
    )
    print_panel("Figure 3(a) I/O Length Histogram", result.io_length)
    print_panel("Figure 3(b) Seek Distance Histogram", result.seek_distance)
    print_panel("Figure 3(c) Seek Distance (Writes)",
                result.seek_distance_writes)
    print_panel("Figure 3(d) Seek Distance (Reads)",
                result.seek_distance_reads)
    print_series("Figure 3 summary", [
        ("Filebench ops/s", f"{result.app_ops_per_second:.0f}"),
        ("dominant I/O size", result.dominant_size_label),
        ("I/Os in (64 KB, 128 KB]", f"{result.large_io_fraction:.0%}"),
        ("sequential writes (windowed)", f"{result.sequential_writes:.0%}"),
        ("random reads", f"{result.random_reads:.0%}"),
    ])

    # Paper shape assertions.
    assert result.dominant_size_label == "131072"   # 80-128 KB I/Os
    assert result.large_io_fraction > 0.5
    assert result.sequential_writes > 0.7           # COW signature
    assert result.random_reads > 0.5                # reads stay random


@pytest.mark.benchmark(group="figures")
def test_figure3_vs_figure2_zfs_wins(benchmark):
    """'the performance of OLTP on ZFS is significantly higher than on
    UFS' — regenerate both and compare the application op rates."""

    def both():
        return run_figure2(**_KWARGS), run_figure3(**_KWARGS)

    ufs, zfs = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = zfs.app_ops_per_second / ufs.app_ops_per_second
    print_series("ZFS vs UFS (application ops/s)", [
        ("UFS", f"{ufs.app_ops_per_second:.0f}"),
        ("ZFS", f"{zfs.app_ops_per_second:.0f}"),
        ("ZFS/UFS", f"{ratio:.2f}x"),
    ])
    assert ratio > 1.1
