"""Figure 4 — DBT-2 (TPC-C) on PostgreSQL / Linux ext3.

Paper shape: almost exclusively 8 KB I/O; write seeks mostly random
with bursts of locality (20% within 500 sectors, 33% within 5000);
writes pinned near 32 outstanding; I/O rate varying over minutes.
"""

import pytest

from conftest import print_panel, print_series
from repro.experiments.figure4 import run_figure4


@pytest.mark.benchmark(group="figures")
def test_figure4_dbt2_postgresql_ext3(benchmark):
    result = benchmark.pedantic(
        run_figure4,
        kwargs={"duration_s": 120.0, "warehouses": 50, "connections": 30},
        rounds=1,
        iterations=1,
    )
    print_panel("Figure 4(a) Seek Distance (Writes)",
                result.seek_distance_writes)
    print_panel("Figure 4(b) I/O Length Histogram", result.io_length)
    print_panel("Figure 4(c) Outstanding I/Os (Reads)",
                result.outstanding_reads)
    print_panel("Figure 4(c) Outstanding I/Os (Writes)",
                result.outstanding_writes)
    print("\n--- Figure 4(d) Outstanding I/Os over time (slot counts) ---")
    print("  " + " ".join(
        str(count) for count in result.outstanding_over_time.slot_counts()
    ))
    print_series("Figure 4 summary", [
        ("transactions/minute", f"{result.transactions_per_minute:.0f}"),
        ("8 KB fraction", f"{result.eight_k_fraction:.1%}"),
        ("writes within 500 sectors", f"{result.writes_within_500:.0%}"),
        ("writes within 5000 sectors", f"{result.writes_within_5000:.0%}"),
        ("modal write outstanding", result.modal_write_outstanding),
        ("I/O rate variation", f"{result.rate_variation:.0%}"),
    ])

    # Paper shape assertions.
    assert result.eight_k_fraction > 0.9
    assert 0.05 < result.writes_within_500 < 0.6        # paper: 20%
    assert result.writes_within_5000 > result.writes_within_500  # 33%
    assert result.modal_write_outstanding in ("28", "32", "64")
    assert result.rate_variation > 0.02                 # paper: ~15%
