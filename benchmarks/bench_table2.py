"""Table 2 — overhead of the online histogram service.

Two measurements, matching the paper's two claims:

* The simulated micro-benchmark (Iometer 4 KB sequential read) run
  with the service disabled and enabled: simulated IOps/MBps/latency
  are identical (observation does not perturb the simulation), and the
  real host-CPU cost per command is reported for both states.
* The raw per-command cost of the hot path, measured directly by
  pytest-benchmark: the disabled hook, the enabled full insertion, and
  the plain histogram insert.
"""

import pytest

from conftest import print_series
from repro.core.collector import VscsiStatsCollector
from repro.core.histogram import Histogram
from repro.core.bins import IO_LENGTH_BINS
from repro.core.service import HistogramService
from repro.experiments.table2 import render_table2, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2_microbenchmark(benchmark):
    result = benchmark.pedantic(
        run_table2,
        kwargs={"duration_s": 4.0, "repetitions": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table2(result))
    # The service must not perturb the simulated workload at all, and
    # the real per-command CPU cost it adds must stay small in
    # absolute terms (the paper's: 0.0424 vs 0.0417 used-sec/IOps).
    assert result.iops_change == pytest.approx(0.0)
    assert result.cpu_overhead_us_per_command < 50.0


@pytest.mark.benchmark(group="table2-hotpath")
def test_hook_cost_service_disabled(benchmark):
    """§5.2: the disabled path is one predicate — effectively free."""
    service = HistogramService()  # disabled

    def hook():
        service.record_issue("vm", "d", 0, True, 0, 8, 0)

    benchmark(hook)


@pytest.mark.benchmark(group="table2-hotpath")
def test_hook_cost_service_enabled(benchmark):
    """The full §3 metric set per command arrival."""
    service = HistogramService()
    service.enable()
    state = {"time": 0, "lba": 0}

    def hook():
        service.record_issue(
            "vm", "d", state["time"], True, state["lba"], 16, 3
        )
        state["time"] += 1_000_000
        state["lba"] = (state["lba"] + 16) % (1 << 24)

    benchmark(hook)


@pytest.mark.benchmark(group="table2-hotpath")
def test_collector_on_issue_cost(benchmark):
    collector = VscsiStatsCollector()
    state = {"time": 0, "lba": 0}

    def issue():
        collector.on_issue(state["time"], True, state["lba"], 16, 3)
        state["time"] += 1_000_000
        state["lba"] = (state["lba"] + 16) % (1 << 24)

    benchmark(issue)


@pytest.mark.benchmark(group="table2-hotpath")
def test_single_histogram_insert_cost(benchmark):
    hist = Histogram(IO_LENGTH_BINS)
    benchmark(hist.insert, 8192)
