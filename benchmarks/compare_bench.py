"""Throughput regression gate for the hot-path benchmark.

Re-measures the replay throughput of every ingestion mode and compares
it against the committed ``BENCH_hotpath.json`` record.  Exits non-zero
when any mode regresses by more than ``TOLERANCE`` (20%), so CI can
gate merges on ingestion throughput the same way it gates on tests.

Usage::

    python benchmarks/compare_bench.py             # gate vs committed record
    python benchmarks/compare_bench.py --n 200000  # quicker, scaled run
    python benchmarks/compare_bench.py --update    # re-measure and commit
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_hotpath import BENCH_JSON, FULL_N, measure

#: Maximum tolerated drop in commands/sec relative to the committed
#: record before the gate fails.
TOLERANCE = 0.20


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=None,
        help="trace length to measure (default: the committed record's)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-measure at the full length and rewrite the record",
    )
    args = parser.parse_args(argv)

    if args.update:
        record = measure(FULL_N)
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(json.dumps(record, indent=2))
        print(f"updated {BENCH_JSON}")
        return 0

    if not BENCH_JSON.exists():
        print(f"no committed record at {BENCH_JSON}; run with --update")
        return 1
    committed = json.loads(BENCH_JSON.read_text())
    n = args.n if args.n is not None else committed["commands"]
    current = measure(n)

    failed = False
    print(f"{'mode':<8} {'committed':>12} {'current':>12} {'ratio':>7}")
    for mode, base in committed["modes"].items():
        now = current["modes"].get(mode)
        if now is None:
            print(f"{mode:<8} {base['commands_per_sec']:>12} {'missing':>12}")
            continue
        ratio = now["commands_per_sec"] / base["commands_per_sec"]
        verdict = ""
        if ratio < 1.0 - TOLERANCE:
            verdict = "  REGRESSION"
            failed = True
        print(
            f"{mode:<8} {base['commands_per_sec']:>12} "
            f"{now['commands_per_sec']:>12} {ratio:>6.2f}x{verdict}"
        )
    if failed:
        print(f"FAIL: throughput regressed more than {TOLERANCE:.0%}")
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
