"""Throughput regression gate for the committed benchmark records.

Re-measures the replay throughput of every registered benchmark (the
PR 1 hot-path ingestion modes, the sharded parallel replay modes, the
live daemon's loopback ingest modes and the durable store's
append/recover/query paths) and compares it against the committed
``BENCH_*.json`` records.  Exits
non-zero when any mode regresses by more than ``TOLERANCE`` (20%), so
CI can gate merges on throughput the same way it gates on tests.

Both records share a schema — ``{"commands": N, "modes": {label:
{"<unit>_per_sec": ...}}}`` — so one comparison loop covers every
benchmark and any future ``bench_*.py`` only needs a registry entry.
Each mode must carry exactly one rate in a known unit
(``commands_per_sec`` or ``epochs_per_sec``); a record with an
unknown, missing or mismatched unit fails the gate outright — stale
records are migrated with ``--update``, never guessed at.  A mode
whose record carries the ``cpus`` it was measured on is skipped (not
failed) when the current host's core count differs: fan-out throughput
is only comparable scale-matched.

Usage::

    python benchmarks/compare_bench.py                 # gate every record
    python benchmarks/compare_bench.py --only parallel # one benchmark
    python benchmarks/compare_bench.py --n 200000      # quicker, scaled run
    python benchmarks/compare_bench.py --update        # re-measure and commit
"""

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_fleet
import bench_hotpath
import bench_live
import bench_parallel
import bench_ssd
import bench_store
import bench_watch

#: Maximum tolerated drop in commands/sec relative to the committed
#: record before the gate fails.
TOLERANCE = 0.20

def _measure_store_gate(_n):
    """The 200k-epoch store gate always runs at its committed scale.

    Store throughput is not scale-invariant (recovery of a 200k-epoch
    WAL scans 170 MB), so this entry pins ``n`` to the committed
    record's corpus instead of honouring ``--n`` — every comparison is
    like against like.
    """
    return bench_store.measure(bench_store.GATE_N)


#: name -> (measure(n) callable, committed record path, full-run n,
#: max n).  ``max_n`` clamps a global ``--n`` for benchmarks whose unit
#: isn't trace commands — the store benchmark counts *epochs*, so its
#: canonical 10k record is gated at 10k, and the CI-wide ``--n
#: 200000`` exercises the store at gate scale through the dedicated
#: ``store-200k`` entry (with its own 200k committed record).
BENCHMARKS = {
    "fleet": (bench_fleet.measure, bench_fleet.BENCH_JSON,
              bench_fleet.FULL_N, bench_fleet.FULL_N),
    "hotpath": (bench_hotpath.measure, bench_hotpath.BENCH_JSON,
                bench_hotpath.FULL_N, None),
    "live": (bench_live.measure, bench_live.BENCH_JSON,
             bench_live.FULL_N, None),
    "parallel": (bench_parallel.measure, bench_parallel.BENCH_JSON,
                 bench_parallel.FULL_N, None),
    "ssd": (bench_ssd.measure, bench_ssd.BENCH_JSON,
            bench_ssd.FULL_N, None),
    "store": (bench_store.measure, bench_store.BENCH_JSON,
              bench_store.FULL_N, bench_store.FULL_N),
    "store-200k": (_measure_store_gate, bench_store.BENCH_200K_JSON,
                   bench_store.GATE_N, bench_store.GATE_N),
    "watch": (bench_watch.measure, bench_watch.BENCH_JSON,
              bench_watch.FULL_N, None),
}


#: The units a mode record may report its rate in.  Exactly one must
#: be present; anything else (a legacy alias, a typo, a unit this gate
#: has never seen) fails the comparison instead of being coerced.
RATE_UNITS = ("commands_per_sec", "epochs_per_sec", "snapshots_per_sec")


def _rate_unit(name, mode, mode_record):
    """The single known rate unit a mode record carries, or ``None``
    (with a diagnostic) when it carries zero or several."""
    if not isinstance(mode_record, dict):
        print(f"[{name}] {mode}: record entry is "
              f"{type(mode_record).__name__}, expected an object with "
              f"one of {list(RATE_UNITS)}; re-commit with --update")
        return None
    units = [unit for unit in RATE_UNITS if unit in mode_record]
    if len(units) == 1:
        return units[0]
    carried = sorted(key for key in mode_record if key.endswith("_per_sec"))
    print(f"[{name}] {mode}: expected exactly one rate unit of "
          f"{list(RATE_UNITS)}, record carries {carried or 'none'}")
    return None


def compare(name, measure, bench_json, n=None, max_n=None):
    """Gate one benchmark against its committed record.

    Returns True when every mode stays within ``TOLERANCE`` of the
    record's commands/sec.
    """
    if not bench_json.exists():
        print(f"[{name}] no committed record at {bench_json}; "
              f"run `python benchmarks/compare_bench.py --only {name} "
              "--update` to create it")
        return False
    try:
        committed = json.loads(bench_json.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        print(f"[{name}] committed record {bench_json} is not valid "
              f"JSON ({exc}); re-create it with `python "
              f"benchmarks/compare_bench.py --only {name} --update`")
        return False
    if not isinstance(committed, dict) or \
            not isinstance(committed.get("modes"), dict) or \
            not committed.get("modes") or \
            not isinstance(committed.get("commands"), int):
        print(f"[{name}] committed record {bench_json} is missing the "
              "required 'commands'/'modes' fields (schema: "
              '{"commands": N, "modes": {label: {"<unit>_per_sec": '
              "...}}}); re-create it with `python "
              f"benchmarks/compare_bench.py --only {name} --update`")
        return False
    if n is None:
        n = committed["commands"]
    if max_n is not None and n > max_n:
        n = max_n
    current = measure(n)

    ok = True
    ncpu = os.cpu_count() or 1
    width = max(len(mode) for mode in committed["modes"])
    print(f"[{name}] {'mode':<{width}} {'committed':>12} "
          f"{'current':>12} {'ratio':>7}")
    for mode, base in committed["modes"].items():
        unit = _rate_unit(name, mode, base)
        if unit is None:
            ok = False
            continue
        if base.get("cpus") not in (None, ncpu):
            # Measured on a differently sized host: fan-out rates are
            # only meaningful scale-matched, so this mode is explicitly
            # out of scope here rather than a false verdict either way.
            print(f"[{name}] {mode:<{width}} {base[unit]:>12} "
                  f"{'skipped':>12}  (record @ {base['cpus']} cpus, "
                  f"host has {ncpu})")
            continue
        now = current["modes"].get(mode)
        if now is None:
            print(f"[{name}] {mode:<{width}} "
                  f"{base[unit]:>12} {'missing':>12}")
            ok = False
            continue
        now_unit = _rate_unit(name, mode, now)
        if now_unit is None:
            ok = False
            continue
        if now_unit != unit:
            print(f"[{name}] {mode:<{width}} committed unit {unit} != "
                  f"measured unit {now_unit}; re-commit with --update")
            ok = False
            continue
        base_rate = base[unit]
        now_rate = now[unit]
        ratio = now_rate / base_rate
        verdict = ""
        if ratio < 1.0 - TOLERANCE:
            verdict = "  REGRESSION"
            ok = False
        print(
            f"[{name}] {mode:<{width}} {base_rate:>12} "
            f"{now_rate:>12} {ratio:>6.2f}x{verdict}"
        )
        # Latency ceilings gate absolutely, not by ratio: a committed
        # ``staleness_p99_ceiling_ms`` is a hard bound the current
        # measurement must stay under regardless of throughput.
        ceiling = base.get("staleness_p99_ceiling_ms")
        if ceiling is not None:
            p99 = now.get("staleness_p99_ms")
            if p99 is None:
                print(f"[{name}] {mode:<{width}} staleness p99 missing "
                      f"from the current measurement")
                ok = False
            elif p99 > ceiling:
                print(f"[{name}] {mode:<{width}} staleness p99 "
                      f"{p99}ms > {ceiling}ms ceiling  REGRESSION")
                ok = False
            else:
                print(f"[{name}] {mode:<{width}} staleness p99 "
                      f"{p99}ms <= {ceiling}ms ceiling")
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only", choices=sorted(BENCHMARKS), default=None,
        help="gate a single benchmark (default: all of them)",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help="trace length to measure (default: each committed record's)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-measure at the full length and rewrite the record(s)",
    )
    args = parser.parse_args(argv)

    names = [args.only] if args.only else sorted(BENCHMARKS)

    if args.update:
        for name in names:
            measure, bench_json, full_n, _max_n = BENCHMARKS[name]
            record = measure(full_n)
            bench_json.write_text(json.dumps(record, indent=2) + "\n")
            print(json.dumps(record, indent=2))
            print(f"updated {bench_json}")
        return 0

    failed = [
        name for name in names
        if not compare(name, *BENCHMARKS[name][:2], n=args.n,
                       max_n=BENCHMARKS[name][3])
    ]
    if failed:
        print(f"FAIL: {', '.join(failed)} regressed more than "
              f"{TOLERANCE:.0%} (or missing a record)")
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
