"""Online analysis (``repro watch``) verdict throughput.

The tentpole's operational claim: the :class:`repro.analysis.online.
OnlineAnalyzer` keeps up with epoch sealing — a verdict is a handful of
histogram scans, so analyzing an epoch must cost microseconds against
the seconds an epoch takes to fill.  This benchmark measures verdicts
end to end over pre-built epoch collector sequences:

* ``steady`` — every epoch carries the same personality: the common
  case, exercising the drift score + baseline *merge* path.
* ``switching`` — the personality flips every ``SWITCH_EVERY`` epochs:
  the expensive case, exercising hysteresis streaks, quarantined
  baselines and event rebasing.  The run asserts the expected number
  of drift events actually fired, so the rate being gated is provably
  the full detection pipeline.

Before any number is reported, both modes are re-run and their verdict
sequences compared — the analyzer's determinism claim (a pure fold
over the epoch sequence) is checked, not assumed.

The reported unit is ``epochs_per_sec`` (an "epoch" here is one
sealed vdisk collector of ``EPOCH_COMMANDS`` commands).  The committed
record gates via ``compare_bench.py`` like every other benchmark;
script mode additionally enforces the absolute ``MIN_EPS`` floor —
orders of magnitude above any realistic seal rate.

Run styles:

* ``pytest benchmarks/bench_watch.py --benchmark-only`` — small corpus,
  wall time measured by pytest-benchmark (autosaved).
* ``python benchmarks/bench_watch.py [N]`` — the full corpus; writes
  ``BENCH_watch.json`` and exits 1 unless the gate holds.
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.online import DriftConfig, OnlineAnalyzer
from repro.core.collector import VscsiStatsCollector

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_watch.json"

#: Commands in the full-run corpus.
FULL_N = 200_000

#: Commands per sealed epoch (so FULL_N yields FULL_N // this epochs).
EPOCH_COMMANDS = 1000

#: The switching mode flips personality every this many epochs.
SWITCH_EVERY = 8

#: Verdicts must come at least this many epochs/sec — with epochs
#: sealing every few seconds in production, this floor is ~100x any
#: real seal rate and catches order-of-magnitude regressions (say, a
#: baseline copy on every epoch) without tripping on scheduler noise.
MIN_EPS = 50.0


def _seq_epoch(n, lba0=0):
    """64 KiB sequential reads — one epoch's collector."""
    c = VscsiStatsCollector()
    t, lba = 0, lba0
    for _ in range(n):
        t += 1000
        c.on_issue(t, True, lba, 128, 8)
        c.on_complete(t + 50_000, True, 50_000)
        lba += 128
    return c


def _zipf_epoch(n, seed=1):
    """4 KiB random write-heavy — the other personality."""
    c = VscsiStatsCollector()
    t = 0
    for i in range(n):
        t += 1000
        is_read = i % 5 == 0
        lba = ((i * 7919 + seed * 104_729) % 1_000_000) * 8
        c.on_issue(t, is_read, lba, 8, 16)
        c.on_complete(t + 80_000, is_read, 80_000)
    return c


def make_epochs(n_epochs, switching=False):
    """Pre-built per-epoch collectors (build cost excluded from timing)."""
    out = []
    for index in range(n_epochs):
        if switching and (index // SWITCH_EVERY) % 2 == 1:
            out.append(_zipf_epoch(EPOCH_COMMANDS, seed=index))
        else:
            out.append(_seq_epoch(EPOCH_COMMANDS, lba0=index * 1000))
    return out


def run_analyzer(epochs, config=None):
    """Feed every epoch; returns ``(seconds, verdict dicts, events)``."""
    analyzer = OnlineAnalyzer(config)
    verdicts = []
    start = time.perf_counter()
    for collector in epochs:
        for v in analyzer.observe_epoch([(("vm", "d0"), collector)]):
            verdicts.append(v.to_dict())
    elapsed = time.perf_counter() - start
    return elapsed, verdicts, analyzer.drift_events_total


def expected_switch_events(n_epochs, config):
    """Drift events a SWITCH_EVERY-period personality square wave must
    fire: one per personality flip whose run outlasts the hysteresis."""
    flips = (n_epochs - 1) // SWITCH_EVERY
    return flips if SWITCH_EVERY >= config.hysteresis_k else 0


# ----------------------------------------------------------------------
# pytest-benchmark entry points (small corpus; autosaved)
# ----------------------------------------------------------------------
if "pytest" in sys.modules:
    import pytest

    PYTEST_EPOCHS = 40

    @pytest.fixture(scope="module")
    def switching_epochs():
        return make_epochs(PYTEST_EPOCHS, switching=True)

    @pytest.mark.benchmark(group="watch")
    def test_watch_switching_verdicts(benchmark, switching_epochs):
        _elapsed, verdicts, events = benchmark.pedantic(
            run_analyzer, args=(switching_epochs,), rounds=1, iterations=1,
        )
        assert len(verdicts) == PYTEST_EPOCHS
        assert events == expected_switch_events(PYTEST_EPOCHS,
                                                DriftConfig())


# ----------------------------------------------------------------------
# Full-run script mode: measure, verify, record
# ----------------------------------------------------------------------
def measure(n=FULL_N):
    """Analyze ``n`` commands' worth of epochs in both modes."""
    n_epochs = max(DriftConfig().hysteresis_k + 1, n // EPOCH_COMMANDS)
    config = DriftConfig()
    results = {}

    for mode, switching in (("steady", False), ("switching", True)):
        epochs = make_epochs(n_epochs, switching=switching)
        elapsed, verdicts, events = run_analyzer(epochs, config)
        # Determinism check: the same epoch sequence must reproduce
        # the same verdicts before the rate counts for anything.
        _again, verdicts2, events2 = run_analyzer(epochs, config)
        assert verdicts == verdicts2 and events == events2, (
            f"{mode}: verdicts are not a pure function of the epochs")
        if switching:
            want = expected_switch_events(n_epochs, config)
            assert events == want, (
                f"switching: expected {want} drift events, got {events}")
        else:
            assert events == 0, (
                f"steady: expected no drift events, got {events}")
        results[mode] = {
            "seconds": round(elapsed, 3),
            "epochs": n_epochs,
            "epoch_commands": EPOCH_COMMANDS,
            "drift_events": events,
            "epochs_per_sec": round(n_epochs / elapsed, 1),
        }

    return {
        "benchmark": "watch_verdicts",
        "commands": n_epochs * EPOCH_COMMANDS,
        "epoch_commands": EPOCH_COMMANDS,
        "switch_every": SWITCH_EVERY,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "modes": results,
    }


def main(argv):
    n = FULL_N
    if len(argv) > 1:
        n = int(argv[1])
    record = measure(n)
    print(json.dumps(record, indent=2))
    if n == FULL_N:
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {BENCH_JSON}")
    ok = True
    for mode, result in record["modes"].items():
        eps = result["epochs_per_sec"]
        if eps < MIN_EPS:
            print(f"FAIL: {mode} analyzed {eps} epochs/sec < {MIN_EPS}")
            ok = False
    if not ok:
        return 1
    rates = ", ".join(f"{mode} {result['epochs_per_sec']} epochs/sec"
                      for mode, result in record["modes"].items())
    print(f"OK: {rates} (floor {MIN_EPS})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
