"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Look-behind window size N** (§3.1, default 16): sweep N against
   interleaved sequential stream counts and report where the
   multi-stream analysis breaks down.
2. **Online histograms vs trace collection** (§3): time and space for
   the same command stream.
3. **Irregular bins vs power-of-two compression** (§4): what the
   post-processing keeps and what collection-time coarsening would
   have lost.
"""

import io

import pytest

from conftest import print_series
from repro.analysis.offline import histogram_space_bytes, trace_space_bytes
from repro.analysis.rebin import power_of_two_scheme, rebin
from repro.core.bins import IO_LENGTH_BINS
from repro.core.collector import VscsiStatsCollector
from repro.core.histogram import Histogram
from repro.core.tracing import TraceBuffer, write_binary
from repro.analysis.characterize import sequential_fraction


def _interleaved_stream(num_streams, commands=2_000, stride=10_000_000):
    """(lba, nblocks) arrivals of N interleaved sequential streams."""
    cursors = [index * stride for index in range(num_streams)]
    for index in range(commands):
        stream = index % num_streams
        yield cursors[stream], 16
        cursors[stream] += 16


@pytest.mark.benchmark(group="ablations")
def test_window_size_vs_stream_count(benchmark):
    """§3.1: N=16 recovers sequentiality 'as long as the window size
    of N is sufficiently big' — and breaks when streams exceed it."""

    def sweep():
        table = {}
        for window in (1, 4, 8, 16, 32):
            for streams in (1, 2, 8, 16, 24, 48):
                collector = VscsiStatsCollector(window_size=window)
                time_ns = 0
                for lba, nblocks in _interleaved_stream(streams):
                    collector.on_issue(time_ns, True, lba, nblocks, 0)
                    time_ns += 1_000_000
                table[(window, streams)] = sequential_fraction(
                    collector.seek_distance_windowed.all
                )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n--- windowed sequential fraction: window N x streams ---")
    streams_axis = (1, 2, 8, 16, 24, 48)
    header = "  N\\streams " + " ".join(f"{s:>6}" for s in streams_axis)
    print(header)
    for window in (1, 4, 8, 16, 32):
        row = " ".join(
            f"{table[(window, s)]:>6.2f}" for s in streams_axis
        )
        print(f"  N={window:<8} {row}")

    # The paper's default N=16 keeps up to 16 streams looking
    # sequential; a window of 1 (the plain histogram) already fails at
    # 2 streams; any window fails once streams exceed it.
    assert table[(16, 16)] > 0.9
    assert table[(1, 2)] < 0.1
    assert table[(16, 48)] < 0.5
    assert table[(32, 24)] > 0.9


@pytest.mark.benchmark(group="ablations")
def test_online_histograms_vs_trace_cost(benchmark):
    """§3's complexity argument, measured: O(m) space vs O(n), with
    comparable per-command time."""
    commands = 50_000

    def collect_both():
        collector = VscsiStatsCollector()
        trace = TraceBuffer()
        time_ns = 0
        lba = 0
        for index in range(commands):
            collector.on_issue(time_ns, True, lba, 16, 0)
            collector.on_complete(time_ns + 500_000, True, 500_000)
            trace.append(time_ns, time_ns + 500_000, lba, 16, True)
            time_ns += 1_000_000
            lba = (lba + 16) % (1 << 24)
        blob = io.BytesIO()
        write_binary(trace, blob)
        return collector, len(blob.getvalue())

    collector, trace_bytes = benchmark.pedantic(
        collect_both, rounds=1, iterations=1
    )
    hist_bytes = histogram_space_bytes(collector)
    print_series("online vs trace space", [
        (f"trace of {commands} commands", f"{trace_bytes:,} bytes (O(n))"),
        ("full histogram set", f"{hist_bytes:,} bytes (O(m))"),
        ("ratio", f"{trace_bytes / hist_bytes:.0f}x"),
    ])
    assert trace_bytes == trace_space_bytes(commands)
    assert hist_bytes < trace_bytes / 100


@pytest.mark.benchmark(group="ablations")
def test_irregular_bins_vs_power_of_two(benchmark):
    """§4: collecting on power-of-two bins from the start would merge
    4095-byte and 4096-byte I/Os forever; the irregular scheme keeps
    them apart and compresses losslessly afterwards."""

    def build():
        irregular = Histogram(IO_LENGTH_BINS)
        for _ in range(1000):
            irregular.insert(4096)      # the special size
        for _ in range(50):
            irregular.insert(4000)      # odd-sized neighbours
        return irregular

    irregular = benchmark.pedantic(build, rounds=1, iterations=1)
    pow2 = rebin(irregular, power_of_two_scheme(IO_LENGTH_BINS))

    label_4096 = irregular.scheme.labels().index("4096")
    label_4095 = irregular.scheme.labels().index("4095")
    merged_index = pow2.scheme.index_for(4096)
    print_series("irregular bins vs power-of-two", [
        ("irregular: exactly 4096 B", irregular.counts[label_4096]),
        ("irregular: (2048, 4095] B", irregular.counts[label_4095]),
        ("pow2: (2048, 4096] B", pow2.counts[merged_index]),
    ])
    # The irregular scheme distinguishes them; compression merges them
    # (and is exact in total counts).
    assert irregular.counts[label_4096] == 1000
    assert irregular.counts[label_4095] == 50
    assert pow2.counts[merged_index] == 1050
    assert pow2.count == irregular.count


@pytest.mark.benchmark(group="ablations")
def test_disk_scheduling_fifo_vs_sstf(benchmark):
    """Queueing-discipline ablation: SSTF (tagged command queueing)
    raises random-read throughput over FIFO but widens the latency
    distribution — the trade the evaluation's FIFO default makes."""
    from repro.sim.engine import Engine, seconds
    from repro.hypervisor.esx import EsxServer
    from repro.storage.array import StorageArray
    from repro.storage.raid import Raid0
    from repro.workloads.iometer import IometerWorkload, SPEC_8K_RANDOM_READ

    def run_policy(policy):
        engine = Engine()
        esx = EsxServer(engine)
        array = esx.add_array(
            StorageArray(engine, layout=Raid0(ndisks=12),
                         disk_scheduling=policy, name="a")
        )
        vm = esx.create_vm("vm")
        device = esx.create_vdisk(vm, "d", array, 6 * 1024**3)
        esx.stats.enable()
        IometerWorkload(engine, device, SPEC_8K_RANDOM_READ,
                        rng=esx.random.stream("w")).start()
        engine.run(until=seconds(5))
        collector = esx.collector_for("vm", "d")
        return collector.iops(), collector.latency_us.all

    def sweep():
        return {policy: run_policy(policy) for policy in ("fifo", "sstf")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fifo_iops, fifo_latency = results["fifo"]
    sstf_iops, sstf_latency = results["sstf"]
    print_series("disk scheduling ablation (8K random, 32 OIO)", [
        ("FIFO IOps", f"{fifo_iops:.0f}"),
        ("SSTF IOps", f"{sstf_iops:.0f}"),
        ("FIFO p50 latency bin (us)",
         f"{fifo_latency.percentile_upper_bound(0.5):.0f}"),
        ("SSTF p50 latency bin (us)",
         f"{sstf_latency.percentile_upper_bound(0.5):.0f}"),
        ("FIFO tail >30ms", f"{1 - fifo_latency.fraction_in(float('-inf'), 30000):.1%}"),
        ("SSTF tail >30ms", f"{1 - sstf_latency.fraction_in(float('-inf'), 30000):.1%}"),
    ])
    assert sstf_iops > fifo_iops                       # throughput win
    tail_fifo = 1 - fifo_latency.fraction_in(float("-inf"), 50000)
    tail_sstf = 1 - sstf_latency.fraction_in(float("-inf"), 50000)
    assert tail_sstf >= tail_fifo                      # fairness cost
