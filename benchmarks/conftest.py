"""Shared helpers for the benchmark harness.

Every ``bench_figureN.py`` regenerates one paper artifact: it runs the
corresponding experiment once under pytest-benchmark (wall time is the
benchmark), prints the same rows/series the paper's figure reports
(visible with ``pytest benchmarks/ --benchmark-only -s``), and asserts
the paper's qualitative shape.
"""

from repro.core.histogram import Histogram

__all__ = ["print_panel", "print_series"]


def pytest_configure(config):
    """Autosave pytest-benchmark results for every benchmark run, so
    ``pytest-benchmark compare`` has a local history to diff against
    (the committed gate lives in ``BENCH_hotpath.json`` +
    ``compare_bench.py``)."""
    if hasattr(config.option, "benchmark_autosave"):
        config.option.benchmark_autosave = True


def print_panel(title: str, hist: Histogram) -> None:
    """Print one figure panel as label/count rows (the paper's bars)."""
    print(f"\n--- {title} ---")
    for label, count in hist.nonzero_items():
        print(f"  {label:>10}  {count}")


def print_series(title: str, rows) -> None:
    """Print a (label, value) series."""
    print(f"\n--- {title} ---")
    for label, value in rows:
        print(f"  {label:<44} {value}")
