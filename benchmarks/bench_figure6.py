"""Figure 6 — multi-VM interference on the CLARiiON CX3, cache off.

Paper shape: the sequential reader suffers ~40x latency / −90% IOps
from the interference; the random reader ~1.6x / −38%; the same pair
on the Symmetrix shows no large change (§5.3).
"""

import pytest

from conftest import print_panel, print_series
from repro.experiments.figure6 import (
    run_figure6,
    run_sequential_over_time,
    run_symmetrix_control,
)


@pytest.mark.benchmark(group="figures")
def test_figure6_interference_cx3_no_cache(benchmark):
    result = benchmark.pedantic(
        run_figure6, kwargs={"duration_s": 8.0}, rounds=1, iterations=1
    )
    print_panel("Figure 6(a) 8K Random Reader latency (solo)",
                result.random_solo.latency)
    print_panel("Figure 6(a) 8K Random Reader latency (dual)",
                result.random_dual.latency)
    print_panel("Figure 6(b) 8K Sequential Reader latency (solo)",
                result.sequential_solo.latency)
    print_panel("Figure 6(b) 8K Sequential Reader latency (dual)",
                result.sequential_dual.latency)
    print_series("Figure 6 summary", [
        ("sequential latency increase",
         f"{result.sequential_latency_factor:.0f}x (paper: 40x)"),
        ("sequential IOps drop",
         f"{result.sequential_iops_drop:.0%} (paper: 90%)"),
        ("random latency increase",
         f"{result.random_latency_factor:.1f}x (paper: 1.6x)"),
        ("random IOps drop",
         f"{result.random_iops_drop:.0%} (paper: 38%)"),
        ("solo seq in (100us,500us]",
         f"{result.sequential_solo.latency.fraction_in(100, 500):.0%} "
         "(paper: 94%)"),
        ("solo random in (5ms,15ms]",
         f"{result.random_solo.latency.fraction_in(5000, 15000):.0%} "
         "(paper: 82%)"),
    ])

    assert result.sequential_latency_factor > 10
    assert result.sequential_iops_drop > 0.7
    assert 1.0 < result.random_latency_factor < 3.0
    assert result.random_iops_drop < result.sequential_iops_drop
    assert result.sequential_solo.latency.fraction_in(100, 500) > 0.6


@pytest.mark.benchmark(group="figures")
def test_figure6c_latency_over_time(benchmark):
    series = benchmark.pedantic(
        run_sequential_over_time,
        kwargs={"total_s": 60.0, "disturb_start_s": 18.0,
                "disturb_end_s": 42.0},
        rounds=1,
        iterations=1,
    )
    print("\n--- Figure 6(c) sequential reader latency over time ---")
    labels = series.scheme.labels()
    for index, hist in enumerate(series.slots()):
        modal = labels[hist.mode_bin()] if hist.count else "-"
        print(f"  S{index + 1:<3d} commands={hist.count:<8d} "
              f"modal latency bin={modal} us")

    quiet = series.slot(1)
    disturbed = series.slot(5)  # inside the interference phase
    assert quiet.count > 5 * disturbed.count       # throughput collapse
    assert disturbed.percentile_upper_bound(0.5) > quiet.percentile_upper_bound(0.5)


@pytest.mark.benchmark(group="figures")
def test_figure6_symmetrix_control(benchmark):
    """§5.3: on the Symmetrix 'we didn't notice any large change in
    latency for either workload'."""
    result = benchmark.pedantic(
        run_symmetrix_control, kwargs={"duration_s": 8.0},
        rounds=1, iterations=1,
    )
    print_series("Symmetrix control", [
        ("sequential latency increase",
         f"{result.sequential_latency_factor:.2f}x"),
        ("random latency increase",
         f"{result.random_latency_factor:.2f}x"),
    ])
    assert result.sequential_latency_factor < 3.0
    assert result.random_latency_factor < 3.0
